#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "util/fft.hh"
#include "util/rng.hh"

namespace cchunter
{
namespace
{

std::vector<double>
randomSeries(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<double> s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        s.push_back(rng.nextGaussian(0.0, 1.0));
    return s;
}

/** O(N^2) reference DFT. */
std::vector<std::complex<double>>
naiveDft(const std::vector<std::complex<double>>& a)
{
    const std::size_t n = a.size();
    std::vector<std::complex<double>> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        std::complex<double> s(0.0, 0.0);
        for (std::size_t j = 0; j < n; ++j) {
            const double angle = -2.0 * M_PI *
                                 static_cast<double>(k * j) /
                                 static_cast<double>(n);
            s += a[j] * std::complex<double>(std::cos(angle),
                                             std::sin(angle));
        }
        out[k] = s;
    }
    return out;
}

TEST(NextPowerOfTwoTest, Basics)
{
    EXPECT_EQ(nextPowerOfTwo(0), 1u);
    EXPECT_EQ(nextPowerOfTwo(1), 1u);
    EXPECT_EQ(nextPowerOfTwo(2), 2u);
    EXPECT_EQ(nextPowerOfTwo(3), 4u);
    EXPECT_EQ(nextPowerOfTwo(1024), 1024u);
    EXPECT_EQ(nextPowerOfTwo(1025), 2048u);
}

TEST(FftTest, MatchesNaiveDft)
{
    Rng rng(11);
    std::vector<std::complex<double>> a;
    for (int i = 0; i < 64; ++i)
        a.emplace_back(rng.nextGaussian(0.0, 1.0),
                       rng.nextGaussian(0.0, 1.0));
    auto expected = naiveDft(a);
    auto actual = a;
    fftInPlace(actual);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t k = 0; k < actual.size(); ++k) {
        EXPECT_NEAR(actual[k].real(), expected[k].real(), 1e-9);
        EXPECT_NEAR(actual[k].imag(), expected[k].imag(), 1e-9);
    }
}

TEST(FftTest, RoundTripIsIdentity)
{
    Rng rng(12);
    std::vector<std::complex<double>> a;
    for (int i = 0; i < 256; ++i)
        a.emplace_back(rng.nextDouble(), rng.nextDouble());
    auto b = a;
    fftInPlace(b);
    fftInPlace(b, true);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(b[i].real(), a[i].real(), 1e-10);
        EXPECT_NEAR(b[i].imag(), a[i].imag(), 1e-10);
    }
}

TEST(FftTest, SizeOneIsNoop)
{
    std::vector<std::complex<double>> a{{3.0, -1.0}};
    fftInPlace(a);
    EXPECT_DOUBLE_EQ(a[0].real(), 3.0);
    EXPECT_DOUBLE_EQ(a[0].imag(), -1.0);
}

TEST(FftTest, NonPowerOfTwoThrows)
{
    std::vector<std::complex<double>> a(3);
    EXPECT_ANY_THROW(fftInPlace(a));
}

TEST(RealFftTest, MatchesComplexFft)
{
    const auto x = randomSeries(21, 128);
    std::vector<std::complex<double>> full(x.begin(), x.end());
    fftInPlace(full);
    const auto half = realFft(x);
    ASSERT_EQ(half.size(), 65u);
    for (std::size_t k = 0; k < half.size(); ++k) {
        EXPECT_NEAR(half[k].real(), full[k].real(), 1e-9) << "k=" << k;
        EXPECT_NEAR(half[k].imag(), full[k].imag(), 1e-9) << "k=" << k;
    }
}

TEST(RealFftTest, SmallestSize)
{
    const auto out = realFft({1.0, -1.0});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_NEAR(out[0].real(), 0.0, 1e-12);
    EXPECT_NEAR(out[1].real(), 2.0, 1e-12);
}

TEST(RealFftTest, OddSizeThrows)
{
    EXPECT_ANY_THROW(realFft({1.0, 2.0, 3.0}));
}

TEST(AutocorrelationSumsFftTest, MatchesDirectSums)
{
    // Deliberately not a power of two to exercise the padding.
    const auto x = randomSeries(31, 300);
    const std::size_t max_lag = 80;
    const auto fft_sums = autocorrelationSumsFft(x, max_lag);
    ASSERT_EQ(fft_sums.size(), max_lag + 1);
    for (std::size_t lag = 0; lag <= max_lag; ++lag) {
        double direct = 0.0;
        for (std::size_t i = 0; i + lag < x.size(); ++i)
            direct += x[i] * x[i + lag];
        EXPECT_NEAR(fft_sums[lag], direct, 1e-8) << "lag=" << lag;
    }
}

TEST(AutocorrelationSumsFftTest, LagsBeyondLengthAreZero)
{
    const auto sums = autocorrelationSumsFft({1.0, 2.0, 3.0}, 10);
    ASSERT_EQ(sums.size(), 11u);
    for (std::size_t lag = 3; lag <= 10; ++lag)
        EXPECT_DOUBLE_EQ(sums[lag], 0.0);
    EXPECT_NEAR(sums[0], 14.0, 1e-10);
    EXPECT_NEAR(sums[1], 8.0, 1e-10);
    EXPECT_NEAR(sums[2], 3.0, 1e-10);
}

TEST(AutocorrelationSumsFftTest, EmptyInputAllZero)
{
    const auto sums = autocorrelationSumsFft({}, 5);
    ASSERT_EQ(sums.size(), 6u);
    for (double v : sums)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FftPlanTest, ThreadLocalCacheReusesOnePlanPerSize)
{
    const FftPlan& a = fftPlanFor(256);
    const FftPlan& b = fftPlanFor(256);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.size(), 256u);
    const FftPlan& c = fftPlanFor(512);
    EXPECT_NE(&a, &c);
    EXPECT_EQ(c.size(), 512u);
}

TEST(FftPlanTest, FreshPlanBitIdenticalToCachedPlan)
{
    Rng rng(51);
    std::vector<std::complex<double>> base;
    for (int i = 0; i < 128; ++i)
        base.emplace_back(rng.nextGaussian(0.0, 1.0),
                          rng.nextGaussian(0.0, 1.0));

    auto cached = base;
    fftInPlace(cached); // vector overload: thread-local cache

    const FftPlan fresh(base.size());
    auto planned = base;
    fftInPlace(planned.data(), planned.size(), fresh);

    for (std::size_t k = 0; k < base.size(); ++k) {
        EXPECT_EQ(planned[k].real(), cached[k].real()) << "k=" << k;
        EXPECT_EQ(planned[k].imag(), cached[k].imag()) << "k=" << k;
    }
}

TEST(FftPlanTest, PlannedRealFftBitIdenticalToVectorOverload)
{
    const auto x = randomSeries(52, 256);
    const auto expected = realFft(x);

    const FftPlan plan(x.size() / 2);
    std::vector<std::complex<double>> packed;
    std::vector<std::complex<double>> out;
    realFft(x.data(), x.size(), plan, packed, out);

    ASSERT_EQ(out.size(), expected.size());
    for (std::size_t k = 0; k < out.size(); ++k) {
        EXPECT_EQ(out[k].real(), expected[k].real()) << "k=" << k;
        EXPECT_EQ(out[k].imag(), expected[k].imag()) << "k=" << k;
    }
}

TEST(FftScratchTest, ScratchOverloadBitIdenticalToVectorOverload)
{
    const auto x = randomSeries(53, 300);
    const std::size_t max_lag = 80;
    const auto expected = autocorrelationSumsFft(x, max_lag);

    FftScratch scratch;
    std::vector<double> out;
    // Twice through the same scratch: reused buffers must not change
    // the result.
    for (int round = 0; round < 2; ++round) {
        autocorrelationSumsFft(x.data(), x.size(), max_lag, scratch,
                               out);
        ASSERT_EQ(out.size(), expected.size()) << "round=" << round;
        for (std::size_t lag = 0; lag <= max_lag; ++lag)
            EXPECT_EQ(out[lag], expected[lag])
                << "round=" << round << " lag=" << lag;
    }
}

TEST(FftScratchTest, PaddedSizeMatchesTheDocumentedRule)
{
    EXPECT_EQ(autocorrPaddedSize(300, 80), nextPowerOfTwo(380));
    EXPECT_EQ(autocorrPaddedSize(1024, 0), 1024u);
    EXPECT_EQ(autocorrPaddedSize(1024, 1), 2048u);
}

} // namespace
} // namespace cchunter
