/**
 * @file
 * Fuzz-style negative tests for Config parsing: seeded random
 * malformed inputs must land in the documented error taxonomy (the
 * specific fatal() message for each failure class), never in a crash
 * or a silently-accepted value.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "util/config.hh"
#include "util/rng.hh"

using namespace cchunter;

namespace
{

/** Run fn and return the fatal() message it raised ("" if none). */
template <typename Fn>
std::string
fatalMessageOf(Fn&& fn)
{
    try {
        fn();
    } catch (const std::runtime_error& e) {
        return e.what();
    }
    return "";
}

Config
parse(const std::vector<std::string>& args)
{
    std::vector<const char*> argv{"prog"};
    for (const std::string& a : args)
        argv.push_back(a.c_str());
    return Config::fromArgs(static_cast<int>(argv.size()),
                            argv.data());
}

/** Seeded pile of printable garbage without '=' or digits. */
std::string
garbageToken(Rng& rng)
{
    static const std::string alphabet =
        "abcXYZ_!@#$%^&*()[]{};:,.<>?/|\\~` ";
    std::string tok;
    const std::size_t len = 1 + rng.nextBelow(12);
    for (std::size_t i = 0; i < len; ++i)
        tok += alphabet[rng.nextBelow(alphabet.size())];
    return tok;
}

} // namespace

TEST(ConfigFuzzTest, DuplicateKeysNameTheKeyAndBothValues)
{
    const std::string msg = fatalMessageOf(
        [] { parse({"quanta=4", "seed=1", "quanta=8"}); });
    EXPECT_NE(msg.find("duplicate config key 'quanta'"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("quanta=8"), std::string::npos) << msg;
}

TEST(ConfigFuzzTest, SeededGarbageTokensAreKeyValueErrors)
{
    Rng rng(31337);
    for (int round = 0; round < 50; ++round) {
        std::string tok = garbageToken(rng);
        if (tok.find('=') != std::string::npos)
            continue;
        const std::string msg =
            fatalMessageOf([&] { parse({tok}); });
        EXPECT_NE(msg.find("expected key=value argument"),
                  std::string::npos)
            << "token '" << tok << "' got: " << msg;
    }
}

TEST(ConfigFuzzTest, LeadingEqualsIsAKeyValueError)
{
    const std::string msg =
        fatalMessageOf([] { parse({"=value"}); });
    EXPECT_NE(msg.find("expected key=value argument"),
              std::string::npos)
        << msg;
}

TEST(ConfigFuzzTest, MalformedNumbersNameTheTaxonomyClass)
{
    Rng rng(99);
    for (int round = 0; round < 50; ++round) {
        const std::string junk = garbageToken(rng);
        Config cfg;
        cfg.set("k", junk);
        EXPECT_NE(fatalMessageOf([&] { cfg.getInt("k"); })
                      .find("is not an integer"),
                  std::string::npos)
            << "value '" << junk << "'";
        EXPECT_NE(fatalMessageOf([&] { cfg.getUint("k"); })
                      .find("is not an unsigned integer"),
                  std::string::npos)
            << "value '" << junk << "'";
        EXPECT_NE(fatalMessageOf([&] { cfg.getDouble("k"); })
                      .find("is not a number"),
                  std::string::npos)
            << "value '" << junk << "'";
    }
}

TEST(ConfigFuzzTest, TrailingJunkOnNumbersIsRejected)
{
    Config cfg;
    cfg.set("n", std::string("12abc"));
    EXPECT_NE(fatalMessageOf([&] { cfg.getInt("n"); })
                  .find("is not an integer: '12abc'"),
              std::string::npos);
    cfg.set("d", std::string("3.14xyz"));
    EXPECT_NE(fatalMessageOf([&] { cfg.getDouble("d"); })
                  .find("is not a number: '3.14xyz'"),
              std::string::npos);
}

TEST(ConfigFuzzTest, BadBooleansListTheOffendingValue)
{
    for (const std::string& bad :
         {"maybe", "2", "TRUE?", "yess", "offf"}) {
        Config cfg;
        cfg.set("flag", bad);
        const std::string msg =
            fatalMessageOf([&] { cfg.getBool("flag"); });
        EXPECT_NE(msg.find("is not a boolean: '" + bad + "'"),
                  std::string::npos)
            << msg;
    }
}

TEST(ConfigFuzzTest, AcceptedBooleanSpellingsStayAccepted)
{
    // The negative taxonomy above is only trustworthy if the accepted
    // set is pinned too.
    Config cfg;
    for (const std::string& yes : {"true", "1", "yes", "on"}) {
        cfg.set("b", yes);
        EXPECT_TRUE(cfg.getBool("b")) << yes;
    }
    for (const std::string& no : {"false", "0", "no", "off"}) {
        cfg.set("b", no);
        EXPECT_FALSE(cfg.getBool("b")) << no;
    }
}
