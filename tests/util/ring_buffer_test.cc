#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>

#include "util/ring_buffer.hh"

namespace cchunter
{
namespace
{

TEST(RingBufferTest, StartsEmpty)
{
    RingBuffer<int> r(4);
    EXPECT_TRUE(r.empty());
    EXPECT_FALSE(r.full());
    EXPECT_EQ(r.size(), 0u);
    EXPECT_EQ(r.capacity(), 4u);
    EXPECT_EQ(r.evictions(), 0u);
}

TEST(RingBufferTest, ZeroCapacityThrows)
{
    EXPECT_ANY_THROW(RingBuffer<int>(0));
}

TEST(RingBufferTest, PushBelowCapacityReturnsNothing)
{
    RingBuffer<int> r(3);
    EXPECT_FALSE(r.push(1).has_value());
    EXPECT_FALSE(r.push(2).has_value());
    EXPECT_FALSE(r.push(3).has_value());
    EXPECT_TRUE(r.full());
    EXPECT_EQ(r.front(), 1);
    EXPECT_EQ(r.back(), 3);
    EXPECT_EQ(r.evictions(), 0u);
}

TEST(RingBufferTest, PushWhenFullEvictsOldest)
{
    RingBuffer<int> r(3);
    r.push(1);
    r.push(2);
    r.push(3);
    auto evicted = r.push(4);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 1);
    EXPECT_EQ(r.size(), 3u);
    EXPECT_EQ(r.front(), 2);
    EXPECT_EQ(r.back(), 4);
    EXPECT_EQ(r.evictions(), 1u);
}

TEST(RingBufferTest, WrapPreservesFifoOrder)
{
    RingBuffer<int> r(4);
    for (int i = 0; i < 11; ++i)
        r.push(i);
    // Retained: 7 8 9 10, in that order.
    ASSERT_EQ(r.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(r[i], static_cast<int>(7 + i));
    EXPECT_EQ(r.evictions(), 7u);
}

TEST(RingBufferTest, IndexOutOfRangeThrows)
{
    RingBuffer<int> r(4);
    r.push(1);
    EXPECT_ANY_THROW(r[1]);
}

TEST(RingBufferTest, PopFrontDrainsOldestFirstAndCounts)
{
    RingBuffer<int> r(3);
    r.push(10);
    r.push(20);
    auto a = r.popFront();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, 10);
    EXPECT_EQ(r.size(), 1u);
    EXPECT_EQ(r.evictions(), 1u);
    auto b = r.popFront();
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*b, 20);
    EXPECT_FALSE(r.popFront().has_value());
    EXPECT_EQ(r.evictions(), 2u);
}

TEST(RingBufferTest, PushAfterPopReusesSlots)
{
    RingBuffer<int> r(3);
    r.push(1);
    r.push(2);
    r.push(3);
    r.popFront();
    EXPECT_FALSE(r.push(4).has_value()); // space was freed
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[0], 2);
    EXPECT_EQ(r[1], 3);
    EXPECT_EQ(r[2], 4);
}

TEST(RingBufferTest, IterationMatchesLogicalOrder)
{
    RingBuffer<int> r(4);
    for (int i = 0; i < 7; ++i)
        r.push(i);
    const int sum = std::accumulate(r.begin(), r.end(), 0);
    EXPECT_EQ(sum, 3 + 4 + 5 + 6);
    std::size_t i = 0;
    for (int v : r)
        EXPECT_EQ(v, r[i++]);
}

TEST(RingBufferTest, ToVectorOldestFirst)
{
    RingBuffer<std::string> r(2);
    r.push("a");
    r.push("b");
    r.push("c");
    const auto v = r.toVector();
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], "b");
    EXPECT_EQ(v[1], "c");
}

TEST(RingBufferTest, ClearCountsRetainedAsEvictions)
{
    RingBuffer<int> r(4);
    r.push(1);
    r.push(2);
    r.clear();
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.evictions(), 2u);
    EXPECT_FALSE(r.push(3).has_value());
    EXPECT_EQ(r.front(), 3);
}

TEST(RingBufferTest, ShrinkCapacityKeepsNewest)
{
    RingBuffer<int> r(5);
    for (int i = 0; i < 5; ++i)
        r.push(i);
    r.setCapacity(2);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r.capacity(), 2u);
    EXPECT_EQ(r[0], 3);
    EXPECT_EQ(r[1], 4);
    EXPECT_EQ(r.evictions(), 3u);
    // And the ring still works at the new capacity.
    auto evicted = r.push(5);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 3);
}

TEST(RingBufferTest, GrowCapacityKeepsAllElements)
{
    RingBuffer<int> r(2);
    r.push(1);
    r.push(2);
    r.push(3); // evicts 1
    r.setCapacity(4);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0], 2);
    EXPECT_EQ(r[1], 3);
    EXPECT_EQ(r.evictions(), 1u); // only the push eviction
    EXPECT_FALSE(r.push(4).has_value());
    EXPECT_FALSE(r.push(5).has_value());
    EXPECT_TRUE(r.full());
}

TEST(RingBufferTest, SetCapacityZeroThrows)
{
    RingBuffer<int> r(2);
    EXPECT_ANY_THROW(r.setCapacity(0));
}

TEST(RingBufferTest, MoveOnlyElementsSupported)
{
    RingBuffer<std::unique_ptr<int>> r(2);
    r.push(std::make_unique<int>(1));
    r.push(std::make_unique<int>(2));
    auto evicted = r.push(std::make_unique<int>(3));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(**evicted, 1);
    auto popped = r.popFront();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(**popped, 2);
}

} // namespace
} // namespace cchunter
