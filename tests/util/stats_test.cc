#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hh"

namespace cchunter
{
namespace
{

TEST(RunningStatsTest, EmptyDefaults)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MeanAndVariance)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic data set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatsTest, MinMaxTracked)
{
    RunningStats s;
    s.add(3.0);
    s.add(-1.0);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(RunningStatsTest, SumMatches)
{
    RunningStats s;
    s.add(1.5);
    s.add(2.5);
    EXPECT_NEAR(s.sum(), 4.0, 1e-12);
}

TEST(RunningStatsTest, ClearResets)
{
    RunningStats s;
    s.add(5.0);
    s.clear();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(StatsTest, MeanOfVector)
{
    EXPECT_DOUBLE_EQ(meanOf({}), 0.0);
    EXPECT_DOUBLE_EQ(meanOf({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, VarianceOfVector)
{
    EXPECT_DOUBLE_EQ(varianceOf({}), 0.0);
    EXPECT_DOUBLE_EQ(varianceOf({5.0, 5.0, 5.0}), 0.0);
    // Population variance of {1,2,3} is 2/3.
    EXPECT_NEAR(varianceOf({1.0, 2.0, 3.0}), 2.0 / 3.0, 1e-12);
}

TEST(StatsTest, PearsonPerfectCorrelation)
{
    std::vector<double> a{1, 2, 3, 4};
    std::vector<double> b{2, 4, 6, 8};
    EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
    std::vector<double> c{8, 6, 4, 2};
    EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(StatsTest, PearsonZeroForConstant)
{
    std::vector<double> a{1, 2, 3, 4};
    std::vector<double> b{5, 5, 5, 5};
    EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(StatsTest, PearsonMismatchedLengthsThrow)
{
    std::vector<double> a{1, 2};
    std::vector<double> b{1};
    EXPECT_ANY_THROW(pearson(a, b));
}

TEST(StatsTest, QuantileInterpolates)
{
    std::vector<double> v{4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(quantileOf(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantileOf(v, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantileOf(v, 0.5), 2.5);
}

TEST(StatsTest, QuantileEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(quantileOf({}, 0.5), 0.0);
}

} // namespace
} // namespace cchunter
