#include <gtest/gtest.h>

#include <sstream>

#include "util/table_writer.hh"

namespace cchunter
{
namespace
{

TEST(TableWriterTest, RendersAlignedTable)
{
    TableWriter t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.render(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("|-"), std::string::npos);
}

TEST(TableWriterTest, RendersCsv)
{
    TableWriter t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.renderCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableWriterTest, RowWidthMismatchThrows)
{
    TableWriter t({"a", "b"});
    EXPECT_ANY_THROW(t.addRow({"only-one"}));
}

TEST(TableWriterTest, EmptyHeaderThrows)
{
    EXPECT_ANY_THROW(TableWriter({}));
}

TEST(TableWriterTest, NumRowsCounts)
{
    TableWriter t({"x"});
    EXPECT_EQ(t.numRows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(FmtTest, FmtDouble)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtDouble(-0.5, 1), "-0.5");
}

TEST(FmtTest, FmtInt)
{
    EXPECT_EQ(fmtInt(1234567), "1234567");
    EXPECT_EQ(fmtInt(-42), "-42");
}

} // namespace
} // namespace cchunter
