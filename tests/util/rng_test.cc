#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hh"

namespace cchunter
{
namespace
{

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(13), 13u);
}

TEST(RngTest, NextBelowCoversRange)
{
    Rng rng(11);
    std::vector<bool> seen(8, false);
    for (int i = 0; i < 500; ++i)
        seen[rng.nextBelow(8)] = true;
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                            [](bool b) { return b; }));
}

TEST(RngTest, NextRangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= (v == -2);
        saw_hi |= (v == 2);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, NextBoolRespectsProbability)
{
    Rng rng(17);
    int trues = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        trues += rng.nextBool(0.25);
    const double frac = static_cast<double>(trues) / n;
    EXPECT_NEAR(frac, 0.25, 0.02);
}

TEST(RngTest, ExponentialMeanApproximates)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(100.0);
    EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(RngTest, GaussianMomentsApproximate)
{
    Rng rng(23);
    double sum = 0.0, sq = 0.0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.nextGaussian(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, PoissonMeanSmallAndLarge)
{
    Rng rng(29);
    for (double mean : {0.5, 4.0, 80.0}) {
        double sum = 0.0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            sum += static_cast<double>(rng.nextPoisson(mean));
        EXPECT_NEAR(sum / n, mean, std::max(0.1, mean * 0.05))
            << "mean=" << mean;
    }
}

TEST(RngTest, PoissonZeroMeanIsZero)
{
    Rng rng(1);
    EXPECT_EQ(rng.nextPoisson(0.0), 0u);
    EXPECT_EQ(rng.nextPoisson(-1.0), 0u);
}

TEST(RngTest, GeometricMeanApproximates)
{
    Rng rng(31);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(0.25));
    EXPECT_NEAR(sum / n, 4.0, 0.2);
}

TEST(RngTest, GeometricOneIsAlwaysOne)
{
    Rng rng(37);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextGeometric(1.0), 1u);
}

TEST(RngTest, ForkProducesIndependentStream)
{
    Rng a(41);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, ShufflePreservesElements)
{
    Rng rng(43);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(RngTest, InvalidArgumentsThrow)
{
    Rng rng(47);
    EXPECT_ANY_THROW(rng.nextBelow(0));
    EXPECT_ANY_THROW(rng.nextRange(3, 1));
    EXPECT_ANY_THROW(rng.nextGeometric(0.0));
}

} // namespace
} // namespace cchunter
