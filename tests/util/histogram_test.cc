#include <gtest/gtest.h>

#include "util/histogram.hh"

namespace cchunter
{
namespace
{

TEST(HistogramTest, StartsEmpty)
{
    Histogram h(16);
    EXPECT_EQ(h.totalSamples(), 0u);
    EXPECT_EQ(h.numBins(), 16u);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(h.bin(i), 0u);
}

TEST(HistogramTest, AddSampleCountsCorrectBin)
{
    Histogram h(8);
    h.addSample(0);
    h.addSample(3);
    h.addSample(3);
    EXPECT_EQ(h.bin(0), 1u);
    EXPECT_EQ(h.bin(3), 2u);
    EXPECT_EQ(h.totalSamples(), 3u);
}

TEST(HistogramTest, OverflowLandsInLastBin)
{
    Histogram h(4);
    h.addSample(100);
    h.addSample(3);
    EXPECT_EQ(h.bin(3), 2u);
}

TEST(HistogramTest, WeightedSamples)
{
    Histogram h(8);
    h.addSample(2, 10);
    EXPECT_EQ(h.bin(2), 10u);
    EXPECT_EQ(h.totalSamples(), 10u);
}

TEST(HistogramTest, CountInRange)
{
    Histogram h(8);
    for (std::uint64_t v = 0; v < 8; ++v)
        h.addSample(v, v + 1);
    EXPECT_EQ(h.countInRange(0, 7), 36u);
    EXPECT_EQ(h.countInRange(2, 4), 3 + 4 + 5u);
    EXPECT_EQ(h.countInRange(5, 100), 6 + 7 + 8u);
    EXPECT_EQ(h.countInRange(7, 2), 0u);
}

TEST(HistogramTest, MaxNonZeroBin)
{
    Histogram h(16);
    EXPECT_EQ(h.maxNonZeroBin(), 0u);
    h.addSample(5);
    h.addSample(11);
    EXPECT_EQ(h.maxNonZeroBin(), 11u);
}

TEST(HistogramTest, PeakBin)
{
    Histogram h(16);
    h.addSample(2, 5);
    h.addSample(9, 50);
    h.addSample(12, 7);
    EXPECT_EQ(h.peakBin(), 9u);
    EXPECT_EQ(h.peakBin(10, 15), 12u);
}

TEST(HistogramTest, MeanComputations)
{
    Histogram h(16);
    h.addSample(0, 3);
    h.addSample(10, 3);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    EXPECT_DOUBLE_EQ(h.meanInRange(1, 15), 10.0);
    EXPECT_DOUBLE_EQ(h.meanInRange(0, 0), 0.0);
}

TEST(HistogramTest, MeanOfEmptyIsZero)
{
    Histogram h(8);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, MergeAddsBinWise)
{
    Histogram a(8), b(8);
    a.addSample(1, 2);
    b.addSample(1, 3);
    b.addSample(4, 1);
    a.merge(b);
    EXPECT_EQ(a.bin(1), 5u);
    EXPECT_EQ(a.bin(4), 1u);
    EXPECT_EQ(a.totalSamples(), 6u);
}

TEST(HistogramTest, MergeSizeMismatchThrows)
{
    Histogram a(8), b(16);
    EXPECT_ANY_THROW(a.merge(b));
}

TEST(HistogramTest, UnmergeInvertsMergeExactly)
{
    Histogram acc(8), a(8), b(8);
    a.addSample(1, 2);
    a.addSample(7, 4);
    b.addSample(1, 3);
    b.addSample(4, 1);
    acc.merge(a);
    acc.merge(b);
    acc.unmerge(a);
    EXPECT_EQ(acc.bin(1), 3u);
    EXPECT_EQ(acc.bin(4), 1u);
    EXPECT_EQ(acc.bin(7), 0u);
    EXPECT_EQ(acc.totalSamples(), 4u);
    acc.unmerge(b);
    EXPECT_EQ(acc.totalSamples(), 0u);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(acc.bin(i), 0u);
}

TEST(HistogramTest, UnmergeUnderflowClampsAndCounts)
{
    // An eviction racing a fault-corrupted merge can try to subtract
    // more than a bin holds; the bin clamps at zero and the underflow
    // is counted rather than aborting the audit pipeline.
    Histogram acc(8), b(8);
    acc.addSample(1, 1);
    acc.addSample(3, 5);
    b.addSample(1, 2);
    b.addSample(3, 2);
    acc.unmerge(b);
    EXPECT_EQ(acc.bin(1), 0u);
    EXPECT_EQ(acc.bin(3), 3u);
    EXPECT_EQ(acc.totalSamples(), 3u);
    EXPECT_EQ(acc.unmergeUnderflows(), 1u);
    // A clean unmerge afterwards leaves the counter untouched.
    Histogram c(8);
    c.addSample(3, 3);
    acc.unmerge(c);
    EXPECT_EQ(acc.totalSamples(), 0u);
    EXPECT_EQ(acc.unmergeUnderflows(), 1u);
}

TEST(HistogramTest, SaturationMaskMergesAndClears)
{
    Histogram a(8), b(8);
    EXPECT_EQ(a.saturatedBins(), 0u);
    a.markSaturated(2);
    b.markSaturated(5);
    EXPECT_TRUE(a.binSaturated(2));
    EXPECT_FALSE(a.binSaturated(5));
    a.merge(b);
    EXPECT_EQ(a.saturatedBins(), 2u);
    EXPECT_TRUE(a.binSaturated(5));
    a.clearSaturation();
    EXPECT_EQ(a.saturatedBins(), 0u);
    EXPECT_ANY_THROW(a.markSaturated(8));
    EXPECT_ANY_THROW(a.binSaturated(8));
}

TEST(HistogramTest, UnmergeSizeMismatchThrows)
{
    Histogram a(8), b(16);
    EXPECT_ANY_THROW(a.unmerge(b));
}

TEST(HistogramTest, ClearResets)
{
    Histogram h(8);
    h.addSample(3, 4);
    h.clear();
    EXPECT_EQ(h.totalSamples(), 0u);
    EXPECT_EQ(h.bin(3), 0u);
}

TEST(HistogramTest, NormalizedSumsToOne)
{
    Histogram h(8);
    h.addSample(1, 1);
    h.addSample(2, 3);
    auto n = h.normalized();
    double sum = 0.0;
    for (double v : n)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_NEAR(n[2], 0.75, 1e-12);
}

TEST(HistogramTest, NormalizedEmptyIsAllZero)
{
    Histogram h(4);
    for (double v : h.normalized())
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(HistogramTest, ToStringListsNonZeroBins)
{
    Histogram h(8);
    h.addSample(0, 2);
    h.addSample(5, 7);
    EXPECT_EQ(h.toString(), "0:2 5:7");
}

TEST(HistogramTest, BinOutOfRangeThrows)
{
    Histogram h(4);
    EXPECT_ANY_THROW(h.bin(4));
}

TEST(HistogramTest, ZeroBinsThrows)
{
    EXPECT_ANY_THROW(Histogram(0));
}

} // namespace
} // namespace cchunter
