#include <gtest/gtest.h>

#include "util/config.hh"

namespace cchunter
{
namespace
{

TEST(ConfigTest, FromArgsParsesKeyValues)
{
    const char* argv[] = {"prog", "alpha=1.5", "name=test", "count=42"};
    Config cfg = Config::fromArgs(4, argv);
    EXPECT_DOUBLE_EQ(cfg.getDouble("alpha"), 1.5);
    EXPECT_EQ(cfg.getString("name"), "test");
    EXPECT_EQ(cfg.getInt("count"), 42);
}

TEST(ConfigTest, FromArgsRejectsMalformed)
{
    const char* argv[] = {"prog", "noequals"};
    EXPECT_ANY_THROW(Config::fromArgs(2, argv));
    const char* argv2[] = {"prog", "=value"};
    EXPECT_ANY_THROW(Config::fromArgs(2, argv2));
}

TEST(ConfigTest, DefaultsReturnedWhenMissing)
{
    Config cfg;
    EXPECT_EQ(cfg.getInt("absent", 7), 7);
    EXPECT_DOUBLE_EQ(cfg.getDouble("absent", 2.5), 2.5);
    EXPECT_EQ(cfg.getString("absent", "dflt"), "dflt");
    EXPECT_TRUE(cfg.getBool("absent", true));
}

TEST(ConfigTest, SettersAndHas)
{
    Config cfg;
    EXPECT_FALSE(cfg.has("k"));
    cfg.set("k", std::int64_t{5});
    EXPECT_TRUE(cfg.has("k"));
    EXPECT_EQ(cfg.getInt("k"), 5);
    cfg.set("d", 1.25);
    EXPECT_DOUBLE_EQ(cfg.getDouble("d"), 1.25);
    cfg.set("b", true);
    EXPECT_TRUE(cfg.getBool("b"));
}

TEST(ConfigTest, BoolParsesCommonSpellings)
{
    Config cfg;
    cfg.set("a", std::string("yes"));
    cfg.set("b", std::string("0"));
    cfg.set("c", std::string("on"));
    EXPECT_TRUE(cfg.getBool("a"));
    EXPECT_FALSE(cfg.getBool("b"));
    EXPECT_TRUE(cfg.getBool("c"));
}

TEST(ConfigTest, MalformedNumbersThrow)
{
    Config cfg;
    cfg.set("x", std::string("12abc"));
    EXPECT_ANY_THROW(cfg.getInt("x"));
    EXPECT_ANY_THROW(cfg.getDouble("x"));
    cfg.set("y", std::string("maybe"));
    EXPECT_ANY_THROW(cfg.getBool("y"));
}

TEST(ConfigTest, UintParses)
{
    Config cfg;
    cfg.set("big", std::string("18446744073709551615"));
    EXPECT_EQ(cfg.getUint("big"), 18446744073709551615ull);
}

TEST(ConfigTest, KeysSorted)
{
    Config cfg;
    cfg.set("b", std::int64_t{1});
    cfg.set("a", std::int64_t{2});
    auto keys = cfg.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "a");
    EXPECT_EQ(keys[1], "b");
}

TEST(ConfigTest, FromArgsRejectsDuplicateKeys)
{
    const char* argv[] = {"prog", "quanta=4", "seed=1", "quanta=8"};
    EXPECT_ANY_THROW(Config::fromArgs(4, argv));
}

TEST(ConfigTest, DumpRendersSortedKeyValueLines)
{
    Config cfg;
    cfg.set("beta", std::string("two"));
    cfg.set("alpha", std::int64_t{1});
    EXPECT_EQ(cfg.dump(), "alpha=1\nbeta=two\n");
}

TEST(ConfigTest, DumpOfEmptyConfigIsEmpty)
{
    EXPECT_EQ(Config().dump(), "");
}

TEST(ConfigTest, HexIntegerParses)
{
    Config cfg;
    cfg.set("addr", std::string("0x40"));
    EXPECT_EQ(cfg.getInt("addr"), 64);
}

} // namespace
} // namespace cchunter
