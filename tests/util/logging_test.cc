#include <gtest/gtest.h>

#include <stdexcept>

#include "util/logging.hh"

namespace cchunter
{
namespace
{

TEST(LoggingTest, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("bad config: ", 42), std::runtime_error);
}

TEST(LoggingTest, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("invariant broken"), std::logic_error);
}

TEST(LoggingTest, FatalMessageIncludesArguments)
{
    try {
        fatal("value=", 7, " name=", "x");
        FAIL() << "fatal did not throw";
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("value=7"), std::string::npos);
        EXPECT_NE(msg.find("name=x"), std::string::npos);
    }
}

TEST(LoggingTest, LogLevelRoundTrips)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(before);
}

TEST(LoggingTest, WarnAndInformDoNotThrow)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_NO_THROW(warn("quiet warning"));
    EXPECT_NO_THROW(inform("quiet info"));
    EXPECT_NO_THROW(debugLog("quiet debug"));
    setLogLevel(before);
}

} // namespace
} // namespace cchunter
