/**
 * @file
 * Steady-state allocation test for the analysis hot path.
 *
 * The scratch-buffer overloads of autocorrelationSumsFft and
 * autocorrelogramFft promise that once their buffers have reached
 * capacity (one warm-up call), repeated windows allocate nothing.
 * This binary replaces the global operator new/delete with counting
 * versions and asserts exactly that — which is why it is its own test
 * executable rather than part of test_util.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "detect/autocorrelation.hh"
#include "util/fft.hh"
#include "util/rng.hh"

namespace
{

std::atomic<std::uint64_t> g_allocations{0};

} // namespace

void*
operator new(std::size_t size)
{
    ++g_allocations;
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    ++g_allocations;
    if (void* p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace cchunter
{
namespace
{

std::vector<double>
binarySeries(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<double> s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        s.push_back(rng.nextDouble() < 0.5 ? 0.0 : 1.0);
    return s;
}

TEST(AllocCountTest, CounterSeesOrdinaryAllocations)
{
    const std::uint64_t before = g_allocations.load();
    auto* v = new std::vector<double>(1000, 1.0);
    EXPECT_GT(g_allocations.load(), before);
    delete v;
}

TEST(AllocCountTest, AutocorrelationSumsSteadyStateAllocatesNothing)
{
    const auto x = binarySeries(71, 4096);
    const std::size_t max_lag = 256;

    FftScratch scratch;
    std::vector<double> out;
    // Warm-up: grows the scratch buffers and the thread-local plan
    // cache for this transform size.
    autocorrelationSumsFft(x.data(), x.size(), max_lag, scratch, out);

    const std::uint64_t before = g_allocations.load();
    for (int round = 0; round < 16; ++round)
        autocorrelationSumsFft(x.data(), x.size(), max_lag, scratch,
                               out);
    EXPECT_EQ(g_allocations.load(), before)
        << "steady-state transform allocated";
}

TEST(AllocCountTest, AutocorrelogramSteadyStateAllocatesNothing)
{
    const auto x = binarySeries(72, 4096);
    const std::size_t max_lag = 256;

    FftScratch scratch;
    std::vector<double> out;
    autocorrelogramFft(x, max_lag, scratch, out);

    const std::uint64_t before = g_allocations.load();
    for (int round = 0; round < 16; ++round)
        autocorrelogramFft(x, max_lag, scratch, out);
    EXPECT_EQ(g_allocations.load(), before)
        << "steady-state correlogram allocated";
}

TEST(AllocCountTest, SmallerWindowsReuseTheGrownScratch)
{
    // After warming up with the largest window, shorter windows (and
    // shorter lags) of the same padded size class must also run
    // allocation-free — the per-slot audit path shrinks, never grows.
    const auto large = binarySeries(73, 4096);
    const auto small = binarySeries(74, 3000);

    FftScratch scratch;
    std::vector<double> out;
    autocorrelogramFft(large, 256, scratch, out);
    autocorrelogramFft(small, 128, scratch, out);

    const std::uint64_t before = g_allocations.load();
    for (int round = 0; round < 8; ++round) {
        autocorrelogramFft(large, 256, scratch, out);
        autocorrelogramFft(small, 128, scratch, out);
    }
    EXPECT_EQ(g_allocations.load(), before)
        << "mixed-window steady state allocated";
}

} // namespace
} // namespace cchunter
