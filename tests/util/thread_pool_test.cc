#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "util/thread_pool.hh"

namespace cchunter
{
namespace
{

TEST(ThreadPoolTest, ReportsSize)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

TEST(ThreadPoolTest, ZeroThreadsUsesHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), ThreadPool::hardwareConcurrency());
}

TEST(ThreadPoolTest, SubmitReturnsResult)
{
    ThreadPool pool(2);
    auto f = pool.submit([]() { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedJobs)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.run([&ran]() { ++ran; });
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<int> hits(1000, 0);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { ++hits[i]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForZeroCountIsNoop)
{
    ThreadPool pool(2);
    bool called = false;
    pool.parallelFor(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForRethrowsBodyException)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(16,
                                  [](std::size_t i) {
                                      if (i == 7)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForRunsConcurrently)
{
    // With 4 workers plus the caller, two sleeping items must overlap;
    // generous margin keeps this robust on loaded machines.
    ThreadPool pool(4);
    const auto start = std::chrono::steady_clock::now();
    pool.parallelFor(4, [](std::size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    });
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                  elapsed)
                  .count(),
              390);
}

TEST(ThreadPoolTest, NestedParallelForCompletes)
{
    // Inner parallel sections run from worker threads; caller
    // participation must keep them from deadlocking even when every
    // worker is occupied by the outer loop.
    ThreadPool pool(2);
    std::vector<std::vector<int>> sums(8, std::vector<int>(32, 0));
    pool.parallelFor(sums.size(), [&](std::size_t outer) {
        pool.parallelFor(sums[outer].size(), [&, outer](std::size_t i) {
            sums[outer][i] = static_cast<int>(outer * 100 + i);
        });
    });
    for (std::size_t outer = 0; outer < sums.size(); ++outer)
        for (std::size_t i = 0; i < sums[outer].size(); ++i)
            EXPECT_EQ(sums[outer][i],
                      static_cast<int>(outer * 100 + i));
}

TEST(ThreadPoolTest, ParallelForExceptionDoesNotDeadlockCaller)
{
    // Regression: a body throwing on a worker (or on the caller's own
    // participation) must leave the caller's wait satisfiable — the
    // fleet shards fan tenants through parallelFor, and a single bad
    // tenant must not hang the whole audit.  The test completing at
    // all is the assertion; the poisoned range must also stop claiming
    // new work rather than grind through every remaining index.
    ThreadPool pool(4);
    const std::size_t count = 16 * (pool.size() + 1);
    std::atomic<std::size_t> executed{0};
    EXPECT_THROW(
        pool.parallelFor(count,
                         [&](std::size_t i) {
                             if (i == 0)
                                 throw std::runtime_error("tenant 0");
                             ++executed;
                             std::this_thread::sleep_for(
                                 std::chrono::milliseconds(1));
                         }),
        std::runtime_error);
    // Every drainer finishes at most the item it was running when the
    // failure was recorded, then abandons the range.
    EXPECT_LT(executed.load(), count);
}

TEST(ThreadPoolTest, ParallelForAllBodiesThrowingStillReturns)
{
    ThreadPool pool(4);
    std::atomic<int> attempts{0};
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](std::size_t) {
                                      ++attempts;
                                      throw std::runtime_error("all");
                                  }),
                 std::runtime_error);
    EXPECT_GE(attempts.load(), 1);
}

TEST(ThreadPoolTest, ParallelForNestedInnerThrowPropagates)
{
    // An exception escaping an inner parallel section must unwind
    // through the outer one without deadlocking either level.
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallelFor(8,
                         [&](std::size_t outer) {
                             pool.parallelFor(
                                 8, [&, outer](std::size_t i) {
                                     if (outer == 3 && i == 5)
                                         throw std::runtime_error(
                                             "inner");
                                 });
                         }),
        std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForUsableAfterException)
{
    // A poisoned range must not wedge the pool: subsequent parallel
    // sections run to completion with every index covered.
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(32,
                                  [](std::size_t i) {
                                      if (i % 2 == 0)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    std::vector<int> hits(512, 0);
    pool.parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForNoBodyRunsAfterReturn)
{
    // Helper tasks may be scheduled long after the caller returned
    // from a poisoned range; they must find the range closed and never
    // touch the body again.  Destroying the pool drains any stragglers
    // before `live` leaves scope.
    std::atomic<bool> live{true};
    {
        ThreadPool pool(4);
        for (int round = 0; round < 16; ++round) {
            try {
                pool.parallelFor(64, [&](std::size_t i) {
                    ASSERT_TRUE(live.load());
                    if (i == 1)
                        throw std::runtime_error("poison");
                });
            } catch (const std::runtime_error&) {
            }
        }
    }
    live = false;
}

TEST(ThreadPoolTest, ParallelForDeterministicByIndex)
{
    // Scheduling is dynamic but results written by index must be
    // identical run to run.
    ThreadPool pool(4);
    std::vector<std::uint64_t> a(256), b(256);
    auto fill = [](std::vector<std::uint64_t>& out) {
        return [&out](std::size_t i) {
            std::uint64_t v = i + 1;
            for (int step = 0; step < 1000; ++step)
                v = v * 6364136223846793005ull + 1442695040888963407ull;
            out[i] = v;
        };
    };
    pool.parallelFor(a.size(), fill(a));
    pool.parallelFor(b.size(), fill(b));
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace cchunter
