#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/ascii_plot.hh"

namespace cchunter
{
namespace
{

TEST(AsciiPlotTest, PlotsNonEmptyGrid)
{
    std::vector<double> ys;
    for (int i = 0; i < 100; ++i)
        ys.push_back(std::sin(i * 0.1));
    std::ostringstream os;
    PlotOptions opts;
    opts.title = "sine";
    asciiPlot(os, ys, opts);
    const std::string s = os.str();
    EXPECT_NE(s.find("sine"), std::string::npos);
    EXPECT_NE(s.find('*'), std::string::npos);
    EXPECT_NE(s.find('+'), std::string::npos);
}

TEST(AsciiPlotTest, EmptySeriesStillRenders)
{
    std::ostringstream os;
    asciiPlot(os, {}, {});
    EXPECT_FALSE(os.str().empty());
}

TEST(AsciiPlotTest, ConstantSeriesDoesNotCrash)
{
    std::vector<double> ys(50, 3.0);
    std::ostringstream os;
    asciiPlot(os, ys, {});
    EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(AsciiPlotTest, XYPlotRespectsXRange)
{
    std::vector<double> xs{0, 10, 20, 30};
    std::vector<double> ys{0, 1, 0, 1};
    std::ostringstream os;
    asciiPlotXY(os, xs, ys, {});
    EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(AsciiPlotTest, BarsRenderHashes)
{
    std::vector<double> bins{0, 5, 20, 3, 0, 0, 15};
    std::ostringstream os;
    asciiBars(os, bins, {});
    const std::string s = os.str();
    EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(AsciiPlotTest, BarsEmptyDoesNotCrash)
{
    std::ostringstream os;
    asciiBars(os, {}, {});
    EXPECT_FALSE(os.str().empty());
}

TEST(AsciiPlotTest, NanValuesAreSkipped)
{
    std::vector<double> ys{1.0, std::nan(""), 2.0, 3.0};
    std::ostringstream os;
    asciiPlot(os, ys, {});
    EXPECT_NE(os.str().find('*'), std::string::npos);
}

} // namespace
} // namespace cchunter
