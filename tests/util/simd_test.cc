/**
 * @file
 * SIMD shim equivalence tests.
 *
 * Every kernel in util/simd.hh promises bit-identical output between
 * the vector backend and the scalar fallback (the golden incident
 * streams depend on it).  These tests run each kernel under both
 * settings of the runtime toggle across sizes that cover empty, tiny,
 * unaligned-tail and large inputs, and compare results with exact
 * equality.  On hosts without the vector extension both runs take the
 * scalar path and the tests pass trivially — the contract is "the
 * toggle never changes bits", which is exactly what is asserted.
 */

#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <string>
#include <vector>

#include "util/fft.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace cchunter
{
namespace
{

/** Restores the global toggle no matter how the test exits. */
class SimdToggleGuard
{
  public:
    SimdToggleGuard() : saved_(simdEnabled()) {}
    ~SimdToggleGuard() { setSimdEnabled(saved_); }

  private:
    bool saved_;
};

const std::vector<std::size_t> kSizes = {0,  1,  2,  3,   4,   5,
                                         7,  8,  9,  15,  16,  17,
                                         31, 64, 100, 255, 1024};

std::vector<double>
randomDoubles(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<double> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        v.push_back(rng.nextGaussian(0.0, 1.0));
    return v;
}

std::vector<std::complex<double>>
randomComplex(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<std::complex<double>> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        v.emplace_back(rng.nextGaussian(0.0, 1.0),
                       rng.nextGaussian(0.0, 1.0));
    return v;
}

TEST(SimdBackendTest, ToggleControlsTheBackendName)
{
    SimdToggleGuard guard;
    setSimdEnabled(false);
    EXPECT_FALSE(simdEnabled());
    EXPECT_STREQ(simdBackendName(), "scalar");
    setSimdEnabled(true);
    EXPECT_TRUE(simdEnabled());
    const std::string name = simdBackendName();
    EXPECT_TRUE(name == "avx2" || name == "scalar") << name;
}

TEST(SimdKernelTest, SquaredDistanceBitIdenticalAcrossBackends)
{
    SimdToggleGuard guard;
    for (const std::size_t n : kSizes) {
        const auto a = randomDoubles(100 + n, n);
        const auto b = randomDoubles(200 + n, n);
        setSimdEnabled(true);
        const double vec = simd::squaredDistance(a.data(), b.data(), n);
        setSimdEnabled(false);
        const double scalar =
            simd::squaredDistance(a.data(), b.data(), n);
        EXPECT_EQ(vec, scalar) << "n=" << n;
    }
}

TEST(SimdKernelTest, SquaredDistanceMatchesDefinitionClosely)
{
    // The fixed 4-lane tree may differ from a sequential sum in the
    // last bits, but it must still compute the same mathematical value.
    const auto a = randomDoubles(7, 100);
    const auto b = randomDoubles(8, 100);
    double reference = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        reference += (a[i] - b[i]) * (a[i] - b[i]);
    EXPECT_NEAR(simd::squaredDistance(a.data(), b.data(), a.size()),
                reference, 1e-12 * reference);
}

TEST(SimdKernelTest, DivideInPlaceBitIdenticalAcrossBackends)
{
    SimdToggleGuard guard;
    for (const std::size_t n : kSizes) {
        const auto base = randomDoubles(300 + n, n);
        const double denom = 3.7;
        auto vec = base;
        setSimdEnabled(true);
        simd::divideInPlace(vec.data(), n, denom);
        auto scalar = base;
        setSimdEnabled(false);
        simd::divideInPlace(scalar.data(), n, denom);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(vec[i], scalar[i]) << "n=" << n << " i=" << i;
            EXPECT_EQ(vec[i], base[i] / denom) << "n=" << n;
        }
    }
}

TEST(SimdKernelTest, ScaleInPlaceBitIdenticalAcrossBackends)
{
    SimdToggleGuard guard;
    for (const std::size_t n : kSizes) {
        const auto base = randomDoubles(400 + n, n);
        const double s = 1.0 / 48.0;
        auto vec = base;
        setSimdEnabled(true);
        simd::scaleInPlace(vec.data(), n, s);
        auto scalar = base;
        setSimdEnabled(false);
        simd::scaleInPlace(scalar.data(), n, s);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(vec[i], scalar[i]) << "n=" << n << " i=" << i;
            EXPECT_EQ(vec[i], base[i] * s) << "n=" << n;
        }
    }
}

TEST(SimdKernelTest, SubtractScalarBitIdenticalAcrossBackends)
{
    SimdToggleGuard guard;
    for (const std::size_t n : kSizes) {
        const auto x = randomDoubles(500 + n, n);
        const double c = 0.4375;
        std::vector<double> vec(n, -1.0);
        std::vector<double> scalar(n, -2.0);
        setSimdEnabled(true);
        simd::subtractScalar(x.data(), n, c, vec.data());
        setSimdEnabled(false);
        simd::subtractScalar(x.data(), n, c, scalar.data());
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(vec[i], scalar[i]) << "n=" << n << " i=" << i;
            EXPECT_EQ(vec[i], x[i] - c) << "n=" << n;
        }
    }
}

TEST(SimdKernelTest, PowerSpectrumExpandBitIdenticalAcrossBackends)
{
    SimdToggleGuard guard;
    for (const std::size_t padded : {2u, 4u, 8u, 64u, 256u, 1024u}) {
        const std::size_t m1 = padded / 2 + 1;
        const auto spectrum = randomComplex(600 + padded, m1);
        std::vector<double> vec(padded, -1.0);
        std::vector<double> scalar(padded, -2.0);
        setSimdEnabled(true);
        simd::powerSpectrumExpand(spectrum.data(), m1, vec.data(),
                                  padded);
        setSimdEnabled(false);
        simd::powerSpectrumExpand(spectrum.data(), m1, scalar.data(),
                                  padded);
        for (std::size_t k = 0; k < padded; ++k)
            EXPECT_EQ(vec[k], scalar[k])
                << "padded=" << padded << " k=" << k;
        // Definition: |X_k|^2 over the half spectrum, mirrored.
        for (std::size_t k = 0; k < m1; ++k)
            EXPECT_EQ(vec[k], std::norm(spectrum[k])) << "k=" << k;
        for (std::size_t k = 1; k < m1; ++k)
            if (k != padded - k)
                EXPECT_EQ(vec[padded - k], vec[k]) << "k=" << k;
    }
}

TEST(SimdKernelTest, ButterflyBlockBitIdenticalAcrossBackends)
{
    SimdToggleGuard guard;
    for (const std::size_t n : {2u, 8u, 64u, 256u}) {
        const FftPlan plan(n);
        for (std::size_t len = 2; len <= n; len <<= 1) {
            const std::size_t half = len / 2;
            const auto base = randomComplex(700 + n + len, len);
            for (const bool inverse : {false, true}) {
                auto vec = base;
                setSimdEnabled(true);
                simd::butterflyBlock(vec.data(),
                                     plan.stageTwiddles(len), half,
                                     inverse);
                auto scalar = base;
                setSimdEnabled(false);
                simd::butterflyBlock(scalar.data(),
                                     plan.stageTwiddles(len), half,
                                     inverse);
                ASSERT_EQ(std::memcmp(vec.data(), scalar.data(),
                                      len * sizeof(vec[0])),
                          0)
                    << "n=" << n << " len=" << len
                    << " inverse=" << inverse;
            }
        }
    }
}

TEST(SimdFftTest, WholeTransformBitIdenticalAcrossBackends)
{
    SimdToggleGuard guard;
    const auto base = randomComplex(42, 512);
    auto vec = base;
    setSimdEnabled(true);
    fftInPlace(vec);
    auto scalar = base;
    setSimdEnabled(false);
    fftInPlace(scalar);
    ASSERT_EQ(std::memcmp(vec.data(), scalar.data(),
                          vec.size() * sizeof(vec[0])),
              0);
}

TEST(SimdFftTest, AutocorrelationSumsBitIdenticalAcrossBackends)
{
    SimdToggleGuard guard;
    const auto x = randomDoubles(43, 700);
    setSimdEnabled(true);
    const auto vec = autocorrelationSumsFft(x, 128);
    setSimdEnabled(false);
    const auto scalar = autocorrelationSumsFft(x, 128);
    ASSERT_EQ(vec.size(), scalar.size());
    for (std::size_t lag = 0; lag < vec.size(); ++lag)
        EXPECT_EQ(vec[lag], scalar[lag]) << "lag=" << lag;
}

} // namespace
} // namespace cchunter
