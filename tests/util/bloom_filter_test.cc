#include <gtest/gtest.h>

#include "util/bloom_filter.hh"
#include "util/rng.hh"

namespace cchunter
{
namespace
{

TEST(BloomFilterTest, InsertedKeysAreFound)
{
    BloomFilter bf(1024, 3);
    for (std::uint64_t k = 0; k < 100; ++k)
        bf.insert(k * 7919);
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_TRUE(bf.mayContain(k * 7919));
}

TEST(BloomFilterTest, EmptyFilterContainsNothing)
{
    BloomFilter bf(1024, 3);
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(bf.mayContain(rng.next()));
}

TEST(BloomFilterTest, ClearRemovesAllKeys)
{
    BloomFilter bf(512, 3);
    for (std::uint64_t k = 1; k <= 50; ++k)
        bf.insert(k);
    EXPECT_GT(bf.popCount(), 0u);
    bf.clear();
    EXPECT_EQ(bf.popCount(), 0u);
    for (std::uint64_t k = 1; k <= 50; ++k)
        EXPECT_FALSE(bf.mayContain(k));
}

TEST(BloomFilterTest, FalsePositiveRateIsBounded)
{
    // 4 * N bits for N keys with 3 hashes (the paper's sizing:
    // 4 x #totalcacheblocks bits across generations).
    const std::size_t n = 1024;
    BloomFilter bf(4 * n, 3);
    Rng rng(2);
    for (std::size_t i = 0; i < n; ++i)
        bf.insert(rng.next());
    int fp = 0;
    const int probes = 20000;
    Rng probe_rng(3);
    for (int i = 0; i < probes; ++i)
        fp += bf.mayContain(probe_rng.next() | 0x8000000000000000ull);
    const double rate = static_cast<double>(fp) / probes;
    // Theoretical rate ~ (1 - e^{-3/4})^3 ~ 0.15; allow slack.
    EXPECT_LT(rate, 0.25);
    EXPECT_NEAR(rate, bf.estimatedFalsePositiveRate(n), 0.08);
}

TEST(BloomFilterTest, SizeRoundsUpToPowerOfTwo)
{
    BloomFilter bf(100, 3);
    EXPECT_EQ(bf.sizeBits(), 128u);
    BloomFilter bf2(64, 3);
    EXPECT_EQ(bf2.sizeBits(), 64u);
}

TEST(BloomFilterTest, InvalidConstructionThrows)
{
    EXPECT_ANY_THROW(BloomFilter(0, 3));
    EXPECT_ANY_THROW(BloomFilter(64, 0));
}

TEST(BloomFilterTest, MoreHashesLowerFalsePositives)
{
    const std::size_t n = 256;
    BloomFilter bf1(8 * n, 1);
    BloomFilter bf3(8 * n, 3);
    Rng rng(5);
    std::vector<std::uint64_t> keys;
    for (std::size_t i = 0; i < n; ++i)
        keys.push_back(rng.next());
    for (auto k : keys) {
        bf1.insert(k);
        bf3.insert(k);
    }
    int fp1 = 0, fp3 = 0;
    Rng probe(6);
    const int probes = 30000;
    for (int i = 0; i < probes; ++i) {
        const auto k = probe.next() | 1ull << 63;
        fp1 += bf1.mayContain(k);
        fp3 += bf3.mayContain(k);
    }
    EXPECT_LT(fp3, fp1);
}

} // namespace
} // namespace cchunter
