#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/bounded_queue.hh"

namespace cchunter
{
namespace
{

TEST(BoundedQueueTest, ZeroCapacityThrows)
{
    EXPECT_ANY_THROW(BoundedQueue<int>(0));
}

TEST(BoundedQueueTest, FifoOrder)
{
    BoundedQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.depth(), 3u);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(BoundedQueueTest, TryPopOnEmptyFails)
{
    BoundedQueue<int> q(2);
    int out = 0;
    EXPECT_FALSE(q.tryPop(out));
    q.push(7);
    EXPECT_TRUE(q.tryPop(out));
    EXPECT_EQ(out, 7);
}

TEST(BoundedQueueTest, DropOldestDisplacesAndCounts)
{
    BoundedQueue<int> q(2, OverflowPolicy::DropOldest);
    EXPECT_TRUE(q.push(1).accepted);
    EXPECT_FALSE(q.push(2).displaced.has_value());
    auto outcome = q.push(3);
    EXPECT_TRUE(outcome.accepted);
    ASSERT_TRUE(outcome.displaced.has_value());
    EXPECT_EQ(*outcome.displaced, 1); // oldest goes, freshest stays
    EXPECT_EQ(q.dropped(), 1u);
    EXPECT_EQ(q.pushed(), 3u);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueueTest, HighWaterMarkTracksDeepestDepth)
{
    BoundedQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.push(3);
    q.pop();
    q.pop();
    q.push(4);
    EXPECT_EQ(q.highWaterMark(), 3u);
    EXPECT_EQ(q.depth(), 2u);
}

TEST(BoundedQueueTest, BlockPolicyAppliesBackpressure)
{
    BoundedQueue<int> q(1, OverflowPolicy::Block);
    q.push(1);
    std::atomic<bool> second_pushed{false};
    std::thread producer([&] {
        q.push(2); // blocks until the consumer makes room
        second_pushed = true;
    });
    // The producer must be stuck behind the full queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(second_pushed.load());
    EXPECT_EQ(q.pop(), 1);
    producer.join();
    EXPECT_TRUE(second_pushed.load());
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.dropped(), 0u);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer)
{
    BoundedQueue<int> q(1, OverflowPolicy::Block);
    q.push(1);
    std::thread producer([&] {
        // Blocked on the full queue until close(); the push is then
        // definitively rejected.
        const auto outcome = q.push(2);
        EXPECT_FALSE(outcome.accepted);
        EXPECT_FALSE(outcome.displaced.has_value());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    producer.join();
    EXPECT_TRUE(q.closed());
    // The queued item survives the close; pops drain then end.
    EXPECT_EQ(q.pop(), 1);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer)
{
    BoundedQueue<int> q(1);
    std::thread consumer([&] {
        // Blocked on the empty queue until close().
        EXPECT_FALSE(q.pop().has_value());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    consumer.join();
}

TEST(BoundedQueueTest, PushAfterCloseRejected)
{
    BoundedQueue<int> q(2);
    q.push(1);
    q.close();
    const auto outcome = q.push(2);
    EXPECT_FALSE(outcome.accepted);
    EXPECT_FALSE(outcome.displaced.has_value());
    EXPECT_EQ(q.pushed(), 1u);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueueTest, PushRacingCloseNeverBlocksForever)
{
    // A producer blocked on a full Block-policy queue and a closer
    // racing it: the push must return promptly with a definite
    // verdict (accepted before close, rejected after), never hang.
    for (int round = 0; round < 50; ++round) {
        BoundedQueue<int> q(1, OverflowPolicy::Block);
        q.push(0);
        std::atomic<bool> returned{false};
        std::thread producer([&] {
            const auto outcome = q.push(1);
            // Rejected pushes must not have displaced anything.
            if (!outcome.accepted)
                EXPECT_FALSE(outcome.displaced.has_value());
            returned = true;
        });
        std::thread closer([&q] { q.close(); });
        closer.join();
        producer.join();
        EXPECT_TRUE(returned.load());
        // Drain whatever made it in; pop() must terminate too.
        while (q.pop().has_value()) {
        }
        EXPECT_TRUE(q.closed());
    }
}

TEST(BoundedQueueTest, PopForTimesOutEmptyHanded)
{
    BoundedQueue<int> q(2);
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(q.popFor(std::chrono::milliseconds(10)).has_value());
    // The wait must actually have waited (roughly) — popFor is the
    // watchdog's poll cadence, not a busy spin.
    EXPECT_GE(std::chrono::steady_clock::now() - start,
              std::chrono::milliseconds(5));
    EXPECT_FALSE(q.closed());
}

TEST(BoundedQueueTest, PopForReturnsQueuedItemImmediately)
{
    BoundedQueue<int> q(2);
    q.push(42);
    const auto v = q.popFor(std::chrono::seconds(30));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
    EXPECT_EQ(q.depth(), 0u);
}

TEST(BoundedQueueTest, PushWakesWaitingPopFor)
{
    BoundedQueue<int> q(2);
    std::thread consumer([&] {
        // A long timeout that a concurrent push must cut short.
        const auto v = q.popFor(std::chrono::seconds(30));
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, 5);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(5);
    consumer.join();
}

TEST(BoundedQueueTest, CloseWakesWaitingPopFor)
{
    // The watchdog shutdown path: close() must interrupt a popFor
    // immediately instead of letting the full timeout elapse.
    BoundedQueue<int> q(2);
    const auto start = std::chrono::steady_clock::now();
    std::thread consumer([&] {
        EXPECT_FALSE(
            q.popFor(std::chrono::seconds(30)).has_value());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    consumer.join();
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::seconds(5));
}

TEST(BoundedQueueTest, PopForDrainsThenTimesOutAfterClose)
{
    // Items queued before close() still drain through popFor; only
    // then does it report empty.
    BoundedQueue<int> q(4);
    q.push(1);
    q.push(2);
    q.close();
    EXPECT_EQ(q.popFor(std::chrono::milliseconds(5)), 1);
    EXPECT_EQ(q.popFor(std::chrono::milliseconds(5)), 2);
    EXPECT_FALSE(q.popFor(std::chrono::milliseconds(5)).has_value());
}

TEST(BoundedQueueTest, PopForMakesRoomForBlockedProducer)
{
    BoundedQueue<int> q(1, OverflowPolicy::Block);
    q.push(1);
    std::thread producer([&] { EXPECT_TRUE(q.push(2).accepted); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // popFor must notify notFull like pop() does, or the producer
    // stays stuck.
    EXPECT_EQ(q.popFor(std::chrono::seconds(30)), 1);
    producer.join();
    EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueueTest, ManyProducersOneConsumerDeliversEverything)
{
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 250;
    BoundedQueue<int> q(8, OverflowPolicy::Block);
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i)
                q.push(p * kPerProducer + i);
        });
    }
    std::vector<bool> seen(kProducers * kPerProducer, false);
    for (int i = 0; i < kProducers * kPerProducer; ++i) {
        auto v = q.pop();
        ASSERT_TRUE(v.has_value());
        ASSERT_GE(*v, 0);
        ASSERT_LT(*v, kProducers * kPerProducer);
        EXPECT_FALSE(seen[static_cast<std::size_t>(*v)]);
        seen[static_cast<std::size_t>(*v)] = true;
    }
    for (auto& t : producers)
        t.join();
    EXPECT_EQ(q.depth(), 0u);
    EXPECT_EQ(q.pushed(),
              static_cast<std::uint64_t>(kProducers * kPerProducer));
    EXPECT_LE(q.highWaterMark(), q.capacity());
}

} // namespace
} // namespace cchunter
