/**
 * @file
 * Pins the DetectionThresholds plumbing: default thresholds leave the
 * scenario runners bit-identical to the pre-parameterisation harness,
 * detectedAt() reproduces the headline decision at the run's own
 * cut-offs, and every run's config dump echoes the cut-offs it used.
 */

#include <gtest/gtest.h>

#include "eval/labelled_corpus.hh"
#include "scenario/experiment.hh"

using namespace cchunter;

namespace
{

ScenarioOptions
fastOptions()
{
    ScenarioOptions opts;
    opts.quantum = 2500000;
    opts.quanta = 8;
    opts.bandwidthBps = 10000.0;
    opts.noiseProcesses = 0;
    opts.seed = 5;
    return opts;
}

} // namespace

TEST(ThresholdPlumbingTest, ValidateRejectsOutOfRangeCutoffs)
{
    DetectionThresholds thresholds;
    EXPECT_NO_THROW(thresholds.validate());
    thresholds.contentionLikelihood = -0.1;
    EXPECT_ANY_THROW(thresholds.validate());
    thresholds = {};
    thresholds.oscillationPeak = 1.5;
    EXPECT_ANY_THROW(thresholds.validate());
    thresholds = {};
    thresholds.oscillationStrongPeak = 2.0;
    EXPECT_ANY_THROW(thresholds.apply());
}

TEST(ThresholdPlumbingTest, ApplyOverridesOnlyTheCutoffs)
{
    CCHunterParams base;
    base.clustering.burst.minNonZeroSamples = 99;
    base.oscillation.minSeriesLength = 77;
    DetectionThresholds thresholds;
    thresholds.contentionLikelihood = 0.8;
    thresholds.oscillationPeak = 0.2;
    thresholds.oscillationStrongPeak = 0.9;
    const CCHunterParams applied = thresholds.apply(base);
    EXPECT_EQ(applied.clustering.burst.likelihoodThreshold, 0.8);
    EXPECT_EQ(applied.oscillation.peakThreshold, 0.2);
    EXPECT_EQ(applied.oscillation.strongPeakThreshold, 0.9);
    // Non-threshold parameters pass through untouched.
    EXPECT_EQ(applied.clustering.burst.minNonZeroSamples, 99u);
    EXPECT_EQ(applied.oscillation.minSeriesLength, 77u);
}

TEST(ThresholdPlumbingTest, DefaultsMatchThePaper)
{
    const DetectionThresholds thresholds;
    EXPECT_EQ(thresholds.contentionLikelihood, 0.5);
    const CCHunterParams stock;
    const CCHunterParams applied = thresholds.apply();
    EXPECT_EQ(applied.clustering.burst.likelihoodThreshold,
              stock.clustering.burst.likelihoodThreshold);
    EXPECT_EQ(applied.oscillation.peakThreshold,
              stock.oscillation.peakThreshold);
    EXPECT_EQ(applied.oscillation.strongPeakThreshold,
              stock.oscillation.strongPeakThreshold);
}

TEST(ThresholdPlumbingTest, DefaultThresholdsKeepRunsBitIdentical)
{
    // Explicit paper values and the default-constructed struct must
    // drive byte-identical analyses (the pre-parameterisation pin).
    ScenarioOptions defaults = fastOptions();
    ScenarioOptions explicitPaper = fastOptions();
    explicitPaper.thresholds.contentionLikelihood = 0.5;
    explicitPaper.thresholds.oscillationPeak = 0.35;
    explicitPaper.thresholds.oscillationStrongPeak = 0.6;
    const DividerScenarioResult a = runDividerScenario(defaults);
    const DividerScenarioResult b = runDividerScenario(explicitPaper);
    EXPECT_EQ(a.verdict.detected, b.verdict.detected);
    EXPECT_EQ(a.verdict.summary(), b.verdict.summary());
    EXPECT_EQ(a.bitErrorRate, b.bitErrorRate);
    EXPECT_EQ(a.sent.toString(), b.sent.toString());
}

TEST(ThresholdPlumbingTest, DetectedAtReproducesTheContentionVerdict)
{
    const DividerScenarioResult run =
        runDividerScenario(fastOptions());
    EXPECT_TRUE(run.verdict.detected);
    EXPECT_EQ(run.verdict.detectedAt(0.5), run.verdict.detected);
    // Re-deciding is monotone: loosening can only keep or gain the
    // detection, tightening can only keep or lose it.
    bool previous = true;
    for (double t = 0.05; t <= 0.951; t += 0.05) {
        const bool now = run.verdict.detectedAt(t);
        EXPECT_TRUE(previous || !now) << "non-monotone at " << t;
        previous = now;
    }
    // The paper separation: a real channel survives far above 0.5.
    EXPECT_TRUE(run.verdict.detectedAt(0.9));
}

TEST(ThresholdPlumbingTest, DetectedAtReproducesTheOscillationVerdict)
{
    ScenarioOptions opts = fastOptions();
    opts.bandwidthBps = 1000.0;
    opts.quanta = 12;
    const CacheScenarioResult run = runCacheScenario(opts);
    EXPECT_TRUE(run.verdict.detected);
    const CCHunterParams paper = DetectionThresholds{}.apply();
    EXPECT_EQ(run.verdict.detectedAt(paper.oscillation),
              run.verdict.detected);
    // An impossible peak floor kills the re-decision.
    OscillationParams strict = paper.oscillation;
    strict.peakThreshold = 1.0;
    strict.strongPeakThreshold = 1.0;
    EXPECT_FALSE(run.verdict.detectedAt(strict));
}

TEST(ThresholdPlumbingTest, ScenarioConfigEchoesTheCutoffs)
{
    ScenarioOptions opts = fastOptions();
    const Config stock = scenarioConfig(opts);
    EXPECT_EQ(stock.getDouble("detect.likelihood"), 0.5);
    EXPECT_EQ(stock.getDouble("detect.osc_peak"), 0.35);
    EXPECT_EQ(stock.getDouble("detect.osc_strong_peak"), 0.6);
    opts.thresholds.contentionLikelihood = 0.75;
    const Config swept = scenarioConfig(opts);
    EXPECT_EQ(swept.getDouble("detect.likelihood"), 0.75);
}

TEST(ThresholdPlumbingTest, SweptThresholdChangesTheOnlineVerdict)
{
    // The same cache channel judged under an impossible peak floor
    // must stop flagging: proof the cut-offs actually reach the
    // online analyses rather than being decorative.
    OnlineAuditOptions options;
    options.workload = AuditedWorkload::Cache;
    options.scenario = fastOptions();
    options.scenario.bandwidthBps = 1000.0;
    options.scenario.quanta = 12;
    options.online.clusteringIntervalQuanta = 4;
    const OnlineAuditResult paper = runOnlineAudit(options);
    options.scenario.thresholds.oscillationPeak = 1.0;
    options.scenario.thresholds.oscillationStrongPeak = 1.0;
    const OnlineAuditResult strict = runOnlineAudit(options);
    ASSERT_EQ(paper.finalVerdicts.size(), 1u);
    ASSERT_EQ(strict.finalVerdicts.size(), 1u);
    EXPECT_TRUE(paper.finalVerdicts[0].detected);
    EXPECT_FALSE(strict.finalVerdicts[0].detected);
    // The online alarm stream dries up with the verdict.
    EXPECT_FALSE(paper.alarms.empty());
    EXPECT_LT(strict.alarms.size(), paper.alarms.size());
}
