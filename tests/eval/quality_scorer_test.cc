#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "eval/quality_scorer.hh"

using namespace cchunter;

namespace
{

/** Trimmed corpus: one bandwidth per axis, no degraded positives,
 *  keeping the scorer tests fast while still covering all four units
 *  and both decision paths. */
CorpusOptions
trimmedCorpus()
{
    CorpusOptions options;
    options.contentionBandwidths = {10000.0};
    options.cacheBandwidths = {1000.0};
    options.includeDegraded = false;
    options.includeAdversarial = false;
    return options;
}

} // namespace

TEST(QualityScorerTest, CleanCorpusScoresPerfectlyAtPaperThreshold)
{
    const auto corpus = buildLabelledCorpus(trimmedCorpus());
    const QualityReport report = scoreCorpus(corpus);
    EXPECT_EQ(report.runs, corpus.size());
    ASSERT_FALSE(report.units.empty());
    for (const UnitQuality& unit : report.units) {
        EXPECT_EQ(unit.cleanFn, 0u)
            << monitorTargetName(unit.unit) << " missed positives";
        EXPECT_EQ(unit.fp, 0u)
            << monitorTargetName(unit.unit) << " false alarms";
        EXPECT_GT(unit.cleanTp + unit.cleanFn, 0u);
        EXPECT_GT(unit.tn + unit.fp, 0u);
        EXPECT_EQ(unit.cleanTpr(), 1.0);
        EXPECT_EQ(unit.falsePositiveRate(), 0.0);
    }
}

TEST(QualityScorerTest, RocCurvesHaveEnoughPointsAndPerfectAuc)
{
    const QualityReport report =
        scoreCorpus(buildLabelledCorpus(trimmedCorpus()));
    EXPECT_GE(report.rocThresholds.size(), 10u);
    for (const UnitQuality& unit : report.units) {
        ASSERT_EQ(unit.roc.size(), report.rocThresholds.size());
        EXPECT_GE(unit.auc, 0.0);
        EXPECT_LE(unit.auc, 1.0);
        // The clean corpus separates perfectly somewhere on the grid.
        EXPECT_EQ(unit.auc, 1.0) << monitorTargetName(unit.unit);
        // Raising the cut-off can only lose detections: TPR and FPR
        // are monotone non-increasing along the ascending grid.
        for (std::size_t i = 1; i < unit.roc.size(); ++i) {
            EXPECT_LE(unit.roc[i].tpr(), unit.roc[i - 1].tpr());
            EXPECT_LE(unit.roc[i].fpr(), unit.roc[i - 1].fpr());
        }
    }
}

TEST(QualityScorerTest, GridDecisionMatchesHeadlineAtSameThreshold)
{
    // detectedAt(t) re-decides the stored analyses; at the exact
    // cut-offs the run used it must reproduce `detected` bit for bit.
    QualityScorerOptions options;
    options.rocThresholds = {0.25, 0.35, 0.5, 0.75};
    const QualityReport report =
        scoreCorpus(buildLabelledCorpus(trimmedCorpus()), options);
    for (const ScenarioScore& score : report.scores) {
        ASSERT_EQ(score.decisionAt.size(), 4u);
        const std::size_t headline =
            score.kind == AlarmKind::Oscillation ? 1 : 2;
        EXPECT_EQ(score.decisionAt[headline], score.detected)
            << score.name << " slot " << score.slot;
    }
}

TEST(QualityScorerTest, ReportIsDeterministicAcrossRunsAndThreads)
{
    CorpusOptions corpus = trimmedCorpus();
    const auto entries = buildLabelledCorpus(corpus);
    QualityScorerOptions serial;
    serial.analysisThreads = 1;
    QualityScorerOptions parallel;
    parallel.analysisThreads = std::max(
        2u, std::thread::hardware_concurrency());
    const std::string first = scoreCorpus(entries, serial).toJson();
    const std::string second = scoreCorpus(entries, serial).toJson();
    const std::string threaded =
        scoreCorpus(entries, parallel).toJson();
    EXPECT_EQ(first, second);
    EXPECT_EQ(first, threaded);
}

TEST(QualityScorerTest, CalibrationBucketsPartitionTheAlarms)
{
    QualityScorerOptions options;
    options.calibrationBuckets = 4;
    const QualityReport report =
        scoreCorpus(buildLabelledCorpus(trimmedCorpus()), options);
    ASSERT_EQ(report.calibration.size(), 4u);
    std::size_t alarms = 0;
    for (const CalibrationBucket& bucket : report.calibration) {
        EXPECT_LT(bucket.lo, bucket.hi);
        EXPECT_LE(bucket.trueAlarms, bucket.alarms);
        if (bucket.alarms) {
            EXPECT_GE(bucket.meanConfidence(), 0.0);
            EXPECT_LE(bucket.meanConfidence(), 1.0);
        }
        alarms += bucket.alarms;
    }
    // The clean corpus raises online alarms (that is what makes the
    // calibration table meaningful), and on clean channels they must
    // be confident-and-correct.
    EXPECT_GT(alarms, 0u);
}

TEST(QualityScorerTest, UnitQualityLookupAndJsonShape)
{
    const QualityReport report =
        scoreCorpus(buildLabelledCorpus(trimmedCorpus()));
    EXPECT_EQ(report.unitQuality(MonitorTarget::MemoryBus).unit,
              MonitorTarget::MemoryBus);
    EXPECT_ANY_THROW(report.unitQuality(MonitorTarget::None));
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"report\": \"detection_quality\""),
              std::string::npos);
    EXPECT_NE(json.find("\"units\""), std::string::npos);
    EXPECT_NE(json.find("\"calibration\""), std::string::npos);
    EXPECT_NE(json.find("\"roc\""), std::string::npos);
    // Units are reported in ascending MonitorTarget order.
    for (std::size_t i = 1; i < report.units.size(); ++i)
        EXPECT_LT(static_cast<int>(report.units[i - 1].unit),
                  static_cast<int>(report.units[i].unit));
}

TEST(QualityScorerTest, MalformedGridIsRejected)
{
    const auto corpus = buildLabelledCorpus(trimmedCorpus());
    QualityScorerOptions options;
    options.rocThresholds = {0.5, 0.4};
    EXPECT_ANY_THROW(scoreCorpus(corpus, options));
    options.rocThresholds = {-0.1, 0.5};
    EXPECT_ANY_THROW(scoreCorpus(corpus, options));
    options.rocThresholds = {0.5, 1.5};
    EXPECT_ANY_THROW(scoreCorpus(corpus, options));
}
