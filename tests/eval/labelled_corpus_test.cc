#include <gtest/gtest.h>

#include <set>
#include <string>

#include "eval/labelled_corpus.hh"
#include "units/unit_registry.hh"

using namespace cchunter;

TEST(LabelledCorpusTest, BuildIsDeterministic)
{
    const auto a = buildLabelledCorpus();
    const auto b = buildLabelledCorpus();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].category, b[i].category);
        EXPECT_EQ(a[i].covert, b[i].covert);
        EXPECT_EQ(a[i].audit.scenario.seed, b[i].audit.scenario.seed);
        EXPECT_EQ(a[i].audit.workload, b[i].audit.workload);
    }
}

TEST(LabelledCorpusTest, NamesUniqueAndSeedsDistinct)
{
    const auto corpus = buildLabelledCorpus();
    std::set<std::string> names;
    std::set<std::uint64_t> seeds;
    for (const LabelledScenario& entry : corpus) {
        EXPECT_TRUE(names.insert(entry.name).second)
            << "duplicate name " << entry.name;
        EXPECT_TRUE(seeds.insert(entry.audit.scenario.seed).second)
            << "duplicate seed in " << entry.name;
    }
}

TEST(LabelledCorpusTest, CovertFlagFollowsCategory)
{
    for (const LabelledScenario& entry : buildLabelledCorpus()) {
        const bool channel =
            entry.category == CorpusCategory::CleanChannel ||
            entry.category == CorpusCategory::DegradedChannel ||
            entry.category == CorpusCategory::EvasiveChannel;
        EXPECT_EQ(entry.covert, channel) << entry.name;
        // Channel entries carry a channel workload; negatives always
        // run the benign pair.
        EXPECT_EQ(entry.audit.workload != AuditedWorkload::BenignPair,
                  channel)
            << entry.name;
        // Only degraded positives carry a fault plan.
        EXPECT_EQ(entry.audit.scenario.faults.enabled(),
                  entry.category == CorpusCategory::DegradedChannel)
            << entry.name;
    }
}

TEST(LabelledCorpusTest, CoversAllRegisteredUnitsAndAllCategories)
{
    std::set<CorpusCategory> categories;
    std::set<AuditedWorkload> positives;
    std::set<BenignAuditUnits> negatives;
    for (const LabelledScenario& entry : buildLabelledCorpus()) {
        categories.insert(entry.category);
        if (entry.covert)
            positives.insert(entry.audit.workload);
        else
            negatives.insert(entry.audit.benignUnits);
    }
    EXPECT_EQ(categories.size(), 5u);
    // Every registered unit has at least one clean positive.
    for (const UnitDescriptor& unit :
         UnitRegistry::instance().descriptors())
        EXPECT_TRUE(positives.count(unit.workload)) << unit.name;
    // Negatives spread over every audit pairing so all five unit
    // kinds accumulate true negatives.
    EXPECT_EQ(negatives.size(), benignPairings().size());
}

TEST(LabelledCorpusTest, AxesShapeTheCorpus)
{
    CorpusOptions options;
    options.contentionBandwidths = {5000.0};
    options.cacheBandwidths = {800.0};
    options.includeDegraded = false;
    options.includeAdversarial = false;
    const auto corpus = buildLabelledCorpus(options);
    for (const LabelledScenario& entry : corpus) {
        EXPECT_NE(entry.category, CorpusCategory::DegradedChannel);
        EXPECT_NE(entry.category, CorpusCategory::AdversarialBenign);
        if (!entry.covert)
            continue;
        // Oscillation-policy units (cache, TLB) take the cache
        // bandwidth axis; contention units take the other.
        const UnitDescriptor* unit =
            UnitRegistry::instance().byWorkload(entry.audit.workload);
        ASSERT_NE(unit, nullptr) << entry.name;
        EXPECT_EQ(entry.audit.scenario.bandwidthBps,
                  unit->policy == AlarmKind::Oscillation ? 800.0
                                                         : 5000.0)
            << entry.name;
    }
    // Shrinking both bandwidth axes to one point shrinks the corpus.
    EXPECT_LT(corpus.size(), buildLabelledCorpus().size());
}

TEST(LabelledCorpusTest, LabelIsMachineReadable)
{
    const auto corpus = buildLabelledCorpus();
    ASSERT_FALSE(corpus.empty());
    const LabelledScenario& entry = corpus.front();
    const Config label = entry.label();
    EXPECT_EQ(label.getString("corpus.name"), entry.name);
    EXPECT_EQ(label.getString("corpus.category"),
              corpusCategoryName(entry.category));
    EXPECT_EQ(label.getBool("corpus.covert"), entry.covert);
    EXPECT_EQ(label.getUint("corpus.seed"),
              entry.audit.scenario.seed);
    EXPECT_EQ(label.getString("corpus.workload"),
              auditedWorkloadName(entry.audit.workload));
}

TEST(LabelledCorpusTest, EmptyBandwidthAxisIsFatal)
{
    CorpusOptions options;
    options.contentionBandwidths.clear();
    EXPECT_ANY_THROW(buildLabelledCorpus(options));
    options = {};
    options.cacheBandwidths.clear();
    EXPECT_ANY_THROW(buildLabelledCorpus(options));
}
