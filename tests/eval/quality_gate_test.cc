#include <gtest/gtest.h>

#include <string>

#include "eval/quality_gate.hh"

using namespace cchunter;

namespace
{

/** Tiny corpus exercising both decision paths (contention + cache). */
CorpusOptions
tinyCorpus()
{
    CorpusOptions options;
    options.contentionBandwidths = {10000.0};
    options.cacheBandwidths = {1000.0};
    options.includeDegraded = false;
    options.includeAdversarial = false;
    return options;
}

/** A hand-built report with one perfect unit. */
QualityReport
perfectReport()
{
    QualityReport report;
    report.runs = 4;
    UnitQuality unit;
    unit.unit = MonitorTarget::MemoryBus;
    unit.cleanTp = 2;
    unit.tn = 2;
    unit.auc = 1.0;
    unit.auc2 = 1.0;
    report.units.push_back(unit);
    return report;
}

bool
mentions(const QualityGateResult& result, const std::string& needle)
{
    for (const std::string& failure : result.failures)
        if (failure.find(needle) != std::string::npos)
            return true;
    return false;
}

} // namespace

TEST(QualityGateTest, PerfectReportPasses)
{
    const QualityGateResult verdict =
        evaluateQualityGate(perfectReport(), {});
    EXPECT_TRUE(verdict.pass);
    EXPECT_TRUE(verdict.failures.empty());
}

TEST(QualityGateTest, MissedCleanPositiveFails)
{
    QualityReport report = perfectReport();
    report.units[0].cleanTp = 1;
    report.units[0].cleanFn = 1;
    const QualityGateResult verdict =
        evaluateQualityGate(report, {});
    EXPECT_FALSE(verdict.pass);
    EXPECT_TRUE(mentions(verdict, "clean TPR"));
    EXPECT_TRUE(mentions(verdict, "bus"));
}

TEST(QualityGateTest, BenignFalseAlarmFails)
{
    QualityReport report = perfectReport();
    report.units[0].fp = 1;
    const QualityGateResult verdict =
        evaluateQualityGate(report, {});
    EXPECT_FALSE(verdict.pass);
    EXPECT_TRUE(mentions(verdict, "FPR"));
}

TEST(QualityGateTest, AucRegressionBeyondEpsilonFails)
{
    QualityReport report = perfectReport();
    report.units[0].auc = 0.95;
    QualityGateParams params;
    params.baselineAuc = {{"bus", 1.0}};
    params.aucEpsilon = 0.02;
    const QualityGateResult verdict =
        evaluateQualityGate(report, params);
    EXPECT_FALSE(verdict.pass);
    EXPECT_TRUE(mentions(verdict, "AUC"));
    // Within epsilon passes.
    report.units[0].auc = 0.99;
    EXPECT_TRUE(evaluateQualityGate(report, params).pass);
}

TEST(QualityGateTest, MissingBaselinedUnitFails)
{
    QualityGateParams params;
    params.baselineAuc = {{"cache", 1.0}};
    const QualityGateResult verdict =
        evaluateQualityGate(perfectReport(), params);
    EXPECT_FALSE(verdict.pass);
    EXPECT_TRUE(mentions(verdict, "missing"));
}

TEST(QualityGateTest, EmptyReportFails)
{
    const QualityGateResult verdict =
        evaluateQualityGate(QualityReport{}, {});
    EXPECT_FALSE(verdict.pass);
}

TEST(QualityGateTest, EndToEndCleanCorpusPassesTheGate)
{
    const QualityReport report =
        scoreCorpus(buildLabelledCorpus(tinyCorpus()));
    QualityGateParams params;
    for (const UnitQuality& unit : report.units)
        params.baselineAuc.emplace_back(monitorTargetName(unit.unit),
                                        1.0);
    const QualityGateResult verdict =
        evaluateQualityGate(report, params);
    EXPECT_TRUE(verdict.pass) << [&] {
        std::string all;
        for (const std::string& f : verdict.failures)
            all += f + "; ";
        return all;
    }();
}

TEST(QualityGateTest, DeliberatelyWeakenedDetectorTripsTheGate)
{
    // The regression gate has to notice a detector that stops
    // detecting: cripple both analysis paths (an unreachable sample
    // floor starves the likelihood test, an unreachable series floor
    // starves the correlogram) and the clean positives go missing.
    QualityScorerOptions weakened;
    weakened.baseHunter.clustering.burst.minNonZeroSamples =
        1000000000;
    weakened.baseHunter.oscillation.minSeriesLength = 1000000000;
    const QualityReport report =
        scoreCorpus(buildLabelledCorpus(tinyCorpus()), weakened);
    const QualityGateResult verdict =
        evaluateQualityGate(report, {});
    EXPECT_FALSE(verdict.pass);
    EXPECT_TRUE(mentions(verdict, "clean TPR"));
    // Every unit lost its positives, none gained false alarms.
    for (const UnitQuality& unit : report.units) {
        EXPECT_EQ(unit.cleanTp, 0u) << monitorTargetName(unit.unit);
        EXPECT_EQ(unit.fp, 0u) << monitorTargetName(unit.unit);
    }
}

namespace
{

/** Append one strategy's classic/indicator2 head-to-head rows. */
void
addEvasionRows(QualityReport& report, EvasionStrategy strategy,
               double classicAuc, double indicator2Auc)
{
    EvasionQuality classic;
    classic.strategy = strategy;
    classic.backend = DetectBackend::CCHunter;
    classic.positives = 5;
    classic.negatives = 7;
    classic.auc = classicAuc;
    EvasionQuality second = classic;
    second.backend = DetectBackend::Indicator2;
    second.auc = indicator2Auc;
    report.evasion.push_back(classic);
    report.evasion.push_back(second);
}

} // namespace

TEST(QualityGateTest, HealthyEvasionHeadToHeadPasses)
{
    QualityReport report = perfectReport();
    addEvasionRows(report, EvasionStrategy::RandomGaps, 1.0, 1.0);
    addEvasionRows(report, EvasionStrategy::LowAndSlow, 0.675, 1.0);
    const QualityGateResult verdict =
        evaluateQualityGate(report, {});
    EXPECT_TRUE(verdict.pass) << [&] {
        std::string all;
        for (const std::string& f : verdict.failures)
            all += f + "; ";
        return all;
    }();
}

TEST(QualityGateTest, Indicator2EvasionAucBelowFloorFails)
{
    QualityReport report = perfectReport();
    addEvasionRows(report, EvasionStrategy::LowAndSlow, 0.675, 0.9);
    const QualityGateResult verdict =
        evaluateQualityGate(report, {});
    EXPECT_FALSE(verdict.pass);
    EXPECT_TRUE(mentions(verdict, "evasion/lowslow"));
    EXPECT_TRUE(mentions(verdict, "indicator2 AUC"));
}

TEST(QualityGateTest, CorpusThatNoLongerEvadesFails)
{
    // Both backends acing every strategy means the attacker side of
    // the arms race rotted: the gate must refuse the hollow victory.
    QualityReport report = perfectReport();
    addEvasionRows(report, EvasionStrategy::RandomGaps, 1.0, 1.0);
    addEvasionRows(report, EvasionStrategy::DutyCycle, 1.0, 1.0);
    addEvasionRows(report, EvasionStrategy::LowAndSlow, 1.0, 1.0);
    const QualityGateResult verdict =
        evaluateQualityGate(report, {});
    EXPECT_FALSE(verdict.pass);
    EXPECT_TRUE(mentions(verdict, "no longer evades"));
}

TEST(QualityGateTest, EvasionMarginBelowFloorFails)
{
    QualityReport report = perfectReport();
    addEvasionRows(report, EvasionStrategy::LowAndSlow, 0.94, 0.995);
    const QualityGateResult verdict =
        evaluateQualityGate(report, {});
    EXPECT_FALSE(verdict.pass);
    EXPECT_TRUE(mentions(verdict, "margin"));
}

TEST(QualityGateTest, Indicator2CleanAucRegressionFails)
{
    // The other half of the arms-race claim: indicator2 must MATCH the
    // classic backend on the clean corpus, not trade it away.
    QualityReport report = perfectReport();
    report.units[0].auc2 = 0.9;
    QualityGateParams params;
    params.baselineAuc = {{"bus", 1.0}};
    const QualityGateResult verdict =
        evaluateQualityGate(report, params);
    EXPECT_FALSE(verdict.pass);
    EXPECT_TRUE(mentions(verdict, "indicator2 clean AUC"));
}
