#include <gtest/gtest.h>

#include <vector>

#include "uarch/divider.hh"
#include "uarch/multiplier.hh"

namespace cchunter
{
namespace
{

TEST(DividerTest, UncontendedBatchFullThroughput)
{
    DividerUnit d(0, DividerParams{5});
    EXPECT_EQ(d.executeBatch(0, 10, 100), 150u);
    EXPECT_EQ(d.totalConflicts(), 0u);
    EXPECT_EQ(d.totalOps(), 10u);
}

TEST(DividerTest, SequentialBatchesNoConflict)
{
    DividerUnit d(0, DividerParams{5});
    d.executeBatch(0, 10, 0);        // busy [0, 50)
    EXPECT_EQ(d.executeBatch(1, 10, 60), 110u);
    EXPECT_EQ(d.totalConflicts(), 0u);
}

TEST(DividerTest, OverlappingBatchesHalfThroughput)
{
    DividerUnit d(0, DividerParams{5});
    d.executeBatch(0, 100, 0);       // busy [0, 500)
    // Fully contended batch: 10 ops at 2*5 = 100 cycles.
    EXPECT_EQ(d.executeBatch(1, 10, 0), 100u);
}

TEST(DividerTest, PartialOverlapMixedThroughput)
{
    DividerUnit d(0, DividerParams{5});
    d.executeBatch(0, 10, 0);        // busy [0, 50)
    // Batch of 10 at t=0: 5 ops contended (50/10), then 5 free:
    // 5*10 + 5*5 = 75.
    EXPECT_EQ(d.executeBatch(1, 10, 0), 75u);
}

TEST(DividerTest, ConflictBurstsBothDirections)
{
    DividerUnit d(0, DividerParams{5});
    std::vector<WaitConflictBurst> bursts;
    d.addWaitListener([&](const WaitConflictBurst& b) {
        bursts.push_back(b);
    });
    d.executeBatch(0, 100, 0);       // busy [0, 500)
    d.executeBatch(1, 10, 0);        // contended for 100 cycles
    ASSERT_EQ(bursts.size(), 2u);
    // Our waits: 10 ops at spacing 10.
    EXPECT_EQ(bursts[0].waiter, 1);
    EXPECT_EQ(bursts[0].occupant, 0);
    EXPECT_EQ(bursts[0].count, 10u);
    EXPECT_EQ(bursts[0].spacing, 10u);
    // Peer waits during the overlap [0, 100): 10 waits.
    EXPECT_EQ(bursts[1].waiter, 0);
    EXPECT_EQ(bursts[1].occupant, 1);
    EXPECT_EQ(bursts[1].count, 10u);
    EXPECT_EQ(d.totalConflicts(), 20u);
}

TEST(DividerTest, ConflictDensityMatchesPaperScale)
{
    // Sustained two-sided contention must produce ~1 wait event per
    // opLatency cycles, i.e. ~100 events per 500-cycle delta-t: the
    // paper's figure 6b burst bins (84-105).
    DividerUnit d(0, DividerParams{5});
    std::uint64_t events = 0;
    d.addWaitListener([&](const WaitConflictBurst& b) {
        events += b.count;
    });
    // Trojan holds the unit for 50k cycles; spy issues batches of 20.
    d.executeBatch(0, 10000, 0); // busy [0, 50000)
    Tick t = 0;
    while (t < 50000)
        t = d.executeBatch(1, 20, t);
    const double per_500 =
        static_cast<double>(events) / (50000.0 / 500.0);
    EXPECT_GT(per_500, 84.0);
    EXPECT_LT(per_500, 115.0);
}

TEST(DividerTest, ZeroCountIsNoOp)
{
    DividerUnit d(0);
    EXPECT_EQ(d.executeBatch(0, 0, 42), 42u);
    EXPECT_EQ(d.totalOps(), 0u);
}

TEST(DividerTest, ForeignContextPanics)
{
    DividerUnit d(4); // serves contexts 4 and 5
    EXPECT_NO_THROW(d.executeBatch(4, 1, 0));
    EXPECT_NO_THROW(d.executeBatch(5, 1, 10));
    EXPECT_ANY_THROW(d.executeBatch(0, 1, 20));
}

TEST(DividerTest, InvalidParamsThrow)
{
    EXPECT_ANY_THROW(DividerUnit(0, DividerParams{0}));
}

TEST(ExecUnitTest, MultiplierHasShorterOpLatency)
{
    MultiplierUnit mul(0);
    DividerUnit div(0);
    EXPECT_LT(mul.params().opLatency, div.params().opLatency);
    EXPECT_EQ(mul.name(), "multiplier");
    EXPECT_EQ(div.name(), "divider");
}

TEST(ExecUnitTest, MultiplierContentionModelMatchesDivider)
{
    // Same mechanics, different latency: 10 ops at 3 cycles = 30.
    MultiplierUnit mul(0);
    EXPECT_EQ(mul.executeBatch(0, 10, 100), 130u);
    // Fully contended batch runs at half throughput.
    MultiplierUnit mul2(0);
    mul2.executeBatch(0, 100, 0); // busy [0, 300)
    EXPECT_EQ(mul2.executeBatch(1, 10, 0), 60u);
    EXPECT_GT(mul2.totalConflicts(), 0u);
}

TEST(ExecUnitTest, UnitsAreIndependent)
{
    DividerUnit div(0);
    MultiplierUnit mul(0);
    div.executeBatch(0, 100, 0);
    EXPECT_EQ(mul.totalOps(), 0u);
    mul.executeBatch(1, 50, 0);
    EXPECT_EQ(div.totalOps(), 100u);
    EXPECT_EQ(mul.totalOps(), 50u);
    // Each unit only tracks its own contention.
    EXPECT_EQ(div.totalConflicts(), 0u);
    EXPECT_EQ(mul.totalConflicts(), 0u);
}

TEST(DividerTest, BurstEventTimesWithinOverlap)
{
    DividerUnit d(0, DividerParams{5});
    std::vector<WaitConflictBurst> bursts;
    d.addWaitListener([&](const WaitConflictBurst& b) {
        bursts.push_back(b);
    });
    d.executeBatch(0, 40, 1000);     // busy [1000, 1200)
    d.executeBatch(1, 50, 1100);     // overlap [1100, 1200)
    for (const auto& b : bursts) {
        EXPECT_GE(b.start, 1100u);
        const Tick last = b.start + (b.count - 1) * b.spacing;
        EXPECT_LE(last, 1000u + 200u + 2 * 5);
    }
}

} // namespace
} // namespace cchunter
