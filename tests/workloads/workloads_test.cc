#include <gtest/gtest.h>

#include <map>

#include "workloads/suites.hh"
#include "workloads/synthetic.hh"

namespace cchunter
{
namespace
{

std::map<ActionKind, int>
sampleActions(Workload& w, int n = 20000)
{
    std::map<ActionKind, int> counts;
    ExecView view;
    for (int i = 0; i < n; ++i)
        ++counts[w.nextAction(view).kind];
    return counts;
}

TEST(SyntheticWorkloadTest, RespectsMemFraction)
{
    SyntheticParams p;
    p.memFraction = 0.5;
    SyntheticWorkload w(p);
    auto counts = sampleActions(w);
    const double frac = counts[ActionKind::MemRead] / 20000.0;
    EXPECT_NEAR(frac, 0.5, 0.03);
}

TEST(SyntheticWorkloadTest, NoLocksWhenDisabled)
{
    SyntheticParams p;
    SyntheticWorkload w(p);
    auto counts = sampleActions(w);
    EXPECT_EQ(counts[ActionKind::LockedAccess], 0);
    EXPECT_EQ(counts[ActionKind::DivideBatch], 0);
}

TEST(SyntheticWorkloadTest, LockBurstsAreConsecutive)
{
    SyntheticParams p;
    p.memFraction = 0.0;
    p.lockBurstFraction = 0.05;
    p.lockBurstMin = 3;
    p.lockBurstMax = 3;
    SyntheticWorkload w(p);
    ExecView view;
    int consecutive = 0;
    int max_run = 0;
    for (int i = 0; i < 5000; ++i) {
        if (w.nextAction(view).kind == ActionKind::LockedAccess) {
            ++consecutive;
            max_run = std::max(max_run, consecutive);
        } else {
            consecutive = 0;
        }
    }
    // Bursts are the trigger plus 3 more = 4 locks; abutting bursts
    // concatenate into multiples of 4.
    EXPECT_GE(max_run, 4);
    EXPECT_EQ(max_run % 4, 0);
}

TEST(SyntheticWorkloadTest, ComputeWithinRange)
{
    SyntheticParams p;
    p.memFraction = 0.0;
    p.computeMin = 100;
    p.computeMax = 200;
    SyntheticWorkload w(p);
    ExecView view;
    for (int i = 0; i < 1000; ++i) {
        Action a = w.nextAction(view);
        ASSERT_EQ(a.kind, ActionKind::Compute);
        EXPECT_GE(a.cycles, 100u);
        EXPECT_LE(a.cycles, 200u);
    }
}

TEST(SyntheticWorkloadTest, AddressesStayInWorkingSet)
{
    SyntheticParams p;
    p.memFraction = 1.0;
    p.workingSetLines = 100;
    p.addrBase = 0x1000000;
    SyntheticWorkload w(p);
    ExecView view;
    for (int i = 0; i < 1000; ++i) {
        Action a = w.nextAction(view);
        ASSERT_EQ(a.kind, ActionKind::MemRead);
        EXPECT_GE(a.addr, 0x1000000u);
        EXPECT_LT(a.addr, 0x1000000u + 100 * 64);
    }
}

TEST(SyntheticWorkloadTest, InvalidParamsThrow)
{
    SyntheticParams p;
    p.workingSetLines = 0;
    EXPECT_ANY_THROW(SyntheticWorkload{p});
    p = SyntheticParams{};
    p.memFraction = 0.9;
    p.divideFraction = 0.5;
    EXPECT_ANY_THROW(SyntheticWorkload{p});
    p = SyntheticParams{};
    p.computeMax = 1;
    p.computeMin = 10;
    EXPECT_ANY_THROW(SyntheticWorkload{p});
}

TEST(SyntheticWorkloadTest, QuietPhaseEmitsOnlyCompute)
{
    SyntheticParams p;
    p.memFraction = 0.8;
    p.phaseOnTicks = 1000;
    p.phaseOffTicks = 1000;
    SyntheticWorkload w(p);
    ExecView view;
    // Inside the quiet phase every action must be compute.
    for (Tick now : {1000u, 1500u, 1999u, 3001u}) {
        view.now = now;
        EXPECT_EQ(w.nextAction(view).kind, ActionKind::Compute)
            << "now=" << now;
    }
    // Inside the active phase memory actions flow again.
    bool saw_mem = false;
    view.now = 100;
    for (int i = 0; i < 50; ++i)
        saw_mem |= w.nextAction(view).kind == ActionKind::MemRead;
    EXPECT_TRUE(saw_mem);
}

TEST(SyntheticWorkloadTest, QuietPhaseComputeBounded)
{
    SyntheticParams p;
    p.phaseOnTicks = 1000;
    p.phaseOffTicks = 100000;
    SyntheticWorkload w(p);
    ExecView view;
    view.now = 1500; // quiet phase
    const Action a = w.nextAction(view);
    ASSERT_EQ(a.kind, ActionKind::Compute);
    // Never sleeps past the phase boundary nor unbounded.
    EXPECT_LE(a.cycles, 100000u);
    EXPECT_GE(a.cycles, 1u);
}

TEST(SuitesTest, AllNamedProxiesConstruct)
{
    for (const auto& name : benchmarkNames()) {
        auto w = makeBenchmark(name, 1);
        EXPECT_EQ(w->name(), name);
    }
}

TEST(SuitesTest, UnknownNameThrows)
{
    EXPECT_ANY_THROW(makeBenchmark("doom3", 1));
}

TEST(SuitesTest, DividerProxiesIssueDivisions)
{
    auto w = makeBenchmark("bzip2", 3);
    auto counts = sampleActions(*w);
    EXPECT_GT(counts[ActionKind::DivideBatch], 1000);
}

TEST(SuitesTest, StreamNeverLocksOrDivides)
{
    auto w = makeBenchmark("stream", 4);
    auto counts = sampleActions(*w);
    EXPECT_EQ(counts[ActionKind::LockedAccess], 0);
    EXPECT_EQ(counts[ActionKind::DivideBatch], 0);
    EXPECT_GT(counts[ActionKind::MemRead], 15000);
}

TEST(SuitesTest, MailserverLocksMoreThanWebserver)
{
    auto mail = makeBenchmark("mailserver", 5);
    auto web = makeBenchmark("webserver", 5);
    auto mc = sampleActions(*mail, 200000);
    auto wc = sampleActions(*web, 200000);
    EXPECT_GT(mc[ActionKind::LockedAccess],
              wc[ActionKind::LockedAccess]);
}

TEST(SuitesTest, IntensityStretchesCompute)
{
    auto full = makeBenchmark("gobmk", 6, 1.0);
    auto light = makeBenchmark("gobmk", 6, 0.1);
    ExecView view;
    Cycles full_sum = 0, light_sum = 0;
    for (int i = 0; i < 2000; ++i) {
        Action a = full->nextAction(view);
        if (a.kind == ActionKind::Compute)
            full_sum += a.cycles;
        Action b = light->nextAction(view);
        if (b.kind == ActionKind::Compute)
            light_sum += b.cycles;
    }
    EXPECT_GT(light_sum, 5 * full_sum);
}

TEST(SuitesTest, InvalidIntensityThrows)
{
    EXPECT_ANY_THROW(makeBenchmark("gobmk", 1, 0.0));
    EXPECT_ANY_THROW(makeBenchmark("gobmk", 1, 2.0));
}

TEST(SuitesTest, FalseAlarmPairsAreKnownNames)
{
    auto names = benchmarkNames();
    for (const auto& [a, b] : falseAlarmPairs()) {
        EXPECT_NE(std::find(names.begin(), names.end(), a), names.end());
        EXPECT_NE(std::find(names.begin(), names.end(), b), names.end());
    }
    EXPECT_GE(falseAlarmPairs().size(), 5u);
}

} // namespace
} // namespace cchunter
