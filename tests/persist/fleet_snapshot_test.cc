/**
 * @file
 * Snapshot-format (v1) tests: payload round-trips for tenant batches,
 * incident stores and meta records; whole-checkpoint encode/decode;
 * structural-inconsistency rejection; future-version rejection; the
 * registry fingerprint contract; and a golden byte fixture pinning the
 * v1 wire format so an accidental layout change cannot slip through.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "persist/fleet_snapshot.hh"
#include "persist/snapshot_file.hh"

using namespace cchunter;
using namespace cchunter::persist;

namespace
{

Alarm
makeAlarm(unsigned slot, std::uint64_t quantum)
{
    Alarm alarm;
    alarm.slot = slot;
    alarm.when = static_cast<Tick>(quantum * 1000);
    alarm.quantum = quantum;
    alarm.summary = "slot " + std::to_string(slot) + " periodic";
    alarm.confidence = 0.875;
    alarm.unit = MonitorTarget::L2Cache;
    alarm.kind = AlarmKind::Oscillation;
    alarm.dominantFeature = 7;
    return alarm;
}

TenantAlarmBatch
makeBatch(TenantId tenant)
{
    TenantAlarmBatch batch;
    batch.tenant = tenant;
    batch.shard = tenant % 3;
    batch.quantaRecorded = 64;
    batch.offlineDetectedUnits = 2;
    batch.alarms.push_back(makeAlarm(0, 5));
    batch.alarms.push_back(makeAlarm(3, 9));
    batch.pipeline.drainedHistograms = 64;
    batch.pipeline.drainedConflicts = 12;
    batch.pipeline.evictedQuanta = 1;
    batch.pipeline.evictedConflicts = 2;
    batch.pipeline.batchesEnqueued = 16;
    batch.pipeline.batchesDropped = 1;
    batch.pipeline.queueDepthHighWater = 4;
    batch.pipeline.analysesRun = 15;
    batch.pipeline.latencyMinUs = 1.5;
    batch.pipeline.latencyMaxUs = 99.25;
    batch.pipeline.latencyTotalUs = 480.0;
    batch.degraded.missedQuanta = 3;
    batch.degraded.duplicatedQuanta = 1;
    batch.degraded.truncatedBatches = 2;
    batch.degraded.truncatedEvents = 17;
    batch.degraded.reorderedBatches = 1;
    batch.degraded.corruptedContexts = 4;
    batch.degraded.bloomAliases = 2;
    batch.degraded.saturatedBinEvents = 8;
    batch.degraded.accumulatorSaturations = 1;
    batch.degraded.unmergeUnderflows = 1;
    batch.degraded.quarantinedBatches = 1;
    batch.degraded.quarantineBadLabel = 1;
    batch.degraded.degradedAlarms = 2;
    batch.degraded.minAlarmConfidence = 0.5;
    batch.degraded.windowCoverage = 0.953125;
    return batch;
}

void
expectBatchEq(const TenantAlarmBatch& a, const TenantAlarmBatch& b)
{
    EXPECT_EQ(a.tenant, b.tenant);
    EXPECT_EQ(a.shard, b.shard);
    EXPECT_EQ(a.quantaRecorded, b.quantaRecorded);
    EXPECT_EQ(a.offlineDetectedUnits, b.offlineDetectedUnits);
    ASSERT_EQ(a.alarms.size(), b.alarms.size());
    for (std::size_t i = 0; i < a.alarms.size(); ++i) {
        EXPECT_EQ(a.alarms[i].slot, b.alarms[i].slot);
        EXPECT_EQ(a.alarms[i].when, b.alarms[i].when);
        EXPECT_EQ(a.alarms[i].quantum, b.alarms[i].quantum);
        EXPECT_EQ(a.alarms[i].summary, b.alarms[i].summary);
        EXPECT_EQ(a.alarms[i].confidence, b.alarms[i].confidence);
        EXPECT_EQ(a.alarms[i].unit, b.alarms[i].unit);
        EXPECT_EQ(a.alarms[i].kind, b.alarms[i].kind);
        EXPECT_EQ(a.alarms[i].dominantFeature,
                  b.alarms[i].dominantFeature);
        EXPECT_EQ(a.alarms[i].channelSignature(),
                  b.alarms[i].channelSignature());
    }
    EXPECT_EQ(a.pipeline.drainedHistograms, b.pipeline.drainedHistograms);
    EXPECT_EQ(a.pipeline.latencyMaxUs, b.pipeline.latencyMaxUs);
    EXPECT_EQ(a.pipeline.latencyTotalUs, b.pipeline.latencyTotalUs);
    EXPECT_EQ(a.degraded.missedQuanta, b.degraded.missedQuanta);
    EXPECT_EQ(a.degraded.minAlarmConfidence,
              b.degraded.minAlarmConfidence);
    EXPECT_EQ(a.degraded.windowCoverage, b.degraded.windowCoverage);
}

IncidentStore
makeStore()
{
    IncidentRateLimit limit;
    limit.maxPerTenant = 3;
    limit.maxTotal = 10;
    IncidentStore store(limit);
    for (int i = 0; i < 4; ++i) {
        Incident incident;
        incident.fleetWide = (i == 3);
        incident.tenant = static_cast<TenantId>(i % 2);
        incident.slot = static_cast<unsigned>(i);
        incident.unit = MonitorTarget::L2Cache;
        incident.kind = AlarmKind::Oscillation;
        incident.signature = 0x5160'0000ull + static_cast<std::uint64_t>(i);
        incident.firstQuantum = 4;
        incident.lastQuantum = 12;
        incident.occurrences = 3;
        incident.meanConfidence = 0.9;
        incident.minConfidence = 0.8;
        incident.score = 0.55;
        incident.severity = IncidentSeverity::Warning;
        incident.correlated = (i == 3);
        if (i == 3)
            incident.correlatedTenants = {0, 1};
        store.emit(incident);
    }
    return store;
}

} // namespace

TEST(FleetSnapshotTest, TenantBatchRoundTrip)
{
    const TenantAlarmBatch batch = makeBatch(42);
    const std::vector<std::uint8_t> payload = encodeTenantBatch(batch);
    ASSERT_FALSE(payload.empty());
    EXPECT_EQ(payload[0],
              static_cast<std::uint8_t>(RecordKind::TenantBatch));

    TenantAlarmBatch out;
    ASSERT_TRUE(decodeTenantBatch(payload, out));
    expectBatchEq(batch, out);
}

TEST(FleetSnapshotTest, TenantBatchRejectsWrongKindAndGarbage)
{
    std::vector<std::uint8_t> payload =
        encodeTenantBatch(makeBatch(1));
    payload[0] = static_cast<std::uint8_t>(RecordKind::Meta);
    TenantAlarmBatch out;
    EXPECT_FALSE(decodeTenantBatch(payload, out));

    // Truncated payload: structurally short, must be refused.
    std::vector<std::uint8_t> cut = encodeTenantBatch(makeBatch(1));
    cut.resize(cut.size() / 2);
    EXPECT_FALSE(decodeTenantBatch(cut, out));

    // Trailing junk: a same-version writer never produces it.
    std::vector<std::uint8_t> padded = encodeTenantBatch(makeBatch(1));
    padded.push_back(0);
    EXPECT_FALSE(decodeTenantBatch(padded, out));
}

TEST(FleetSnapshotTest, IncidentStoreRoundTrip)
{
    const IncidentStore store = makeStore();
    const std::vector<std::uint8_t> payload =
        encodeIncidentStore(store, store.limit());

    IncidentStore out;
    ASSERT_TRUE(decodeIncidentStore(payload, out));
    EXPECT_EQ(out.incidents().size(), store.incidents().size());
    EXPECT_EQ(out.suppressed(), store.suppressed());
    EXPECT_EQ(out.limit().maxPerTenant, store.limit().maxPerTenant);
    EXPECT_EQ(out.limit().maxTotal, store.limit().maxTotal);
    // The determinism contract is stated over the canonical stream:
    // a restored store must render byte-identically.
    EXPECT_EQ(out.streamText(), store.streamText());
    EXPECT_EQ(out.streamHash(), store.streamHash());
    ASSERT_FALSE(out.incidents().empty());
    EXPECT_EQ(out.incidents().back().correlatedTenants,
              store.incidents().back().correlatedTenants);
}

TEST(FleetSnapshotTest, RestoredStoreContinuesRateLimiting)
{
    IncidentStore store = makeStore(); // maxPerTenant=3, tenant 0 has 2
    const std::vector<std::uint8_t> payload =
        encodeIncidentStore(store, store.limit());
    IncidentStore out;
    ASSERT_TRUE(decodeIncidentStore(payload, out));

    const std::uint64_t nextId = store.incidents().back().id + 1;
    Incident extra;
    extra.tenant = 0;
    extra.slot = 9;
    // Third incident for tenant 0 is admitted with the continued id
    // sequence; the fourth hits the per-tenant cap.
    EXPECT_TRUE(out.emit(extra));
    EXPECT_EQ(out.incidents().back().id, nextId);
    Incident over = extra;
    over.slot = 10;
    EXPECT_FALSE(out.emit(over));
    EXPECT_EQ(out.suppressed(), store.suppressed() + 1);
}

TEST(FleetSnapshotTest, MetaRoundTrip)
{
    const std::vector<std::uint8_t> payload =
        encodeMeta(0xFEEDFACEF00Dull, true, 17);
    std::uint64_t fingerprint = 0, batchCount = 0;
    bool finalized = false;
    ASSERT_TRUE(
        decodeMeta(payload, fingerprint, batchCount, finalized));
    EXPECT_EQ(fingerprint, 0xFEEDFACEF00Dull);
    EXPECT_EQ(batchCount, 17u);
    EXPECT_TRUE(finalized);

    std::vector<std::uint8_t> wrongKind = payload;
    wrongKind[0] =
        static_cast<std::uint8_t>(RecordKind::TenantBatch);
    EXPECT_FALSE(
        decodeMeta(wrongKind, fingerprint, batchCount, finalized));
}

TEST(FleetSnapshotTest, CheckpointRoundTrip)
{
    FleetCheckpoint checkpoint;
    checkpoint.registryFingerprint = 0xABCDull;
    checkpoint.finalized = true;
    checkpoint.batches.push_back(makeBatch(2));
    checkpoint.batches.push_back(makeBatch(5));
    checkpoint.incidents = makeStore();

    const std::vector<std::uint8_t> bytes = encodeFleetCheckpoint(
        checkpoint, checkpoint.incidents->limit());
    const RecordFileContents contents =
        decodeRecordFile(bytes, ReadMode::Snapshot);
    ASSERT_TRUE(contents.clean());

    FleetCheckpoint out;
    ASSERT_TRUE(decodeFleetCheckpoint(contents, out));
    EXPECT_EQ(out.registryFingerprint, 0xABCDull);
    EXPECT_TRUE(out.finalized);
    ASSERT_EQ(out.batches.size(), 2u);
    expectBatchEq(checkpoint.batches[0], out.batches[0]);
    expectBatchEq(checkpoint.batches[1], out.batches[1]);
    ASSERT_TRUE(out.incidents.has_value());
    EXPECT_EQ(out.incidents->streamText(),
              checkpoint.incidents->streamText());
}

TEST(FleetSnapshotTest, UnfinalizedCheckpointCarriesNoIncidents)
{
    FleetCheckpoint checkpoint;
    checkpoint.registryFingerprint = 7;
    checkpoint.batches.push_back(makeBatch(0));

    const std::vector<std::uint8_t> bytes =
        encodeFleetCheckpoint(checkpoint);
    FleetCheckpoint out;
    ASSERT_TRUE(decodeFleetCheckpoint(
        decodeRecordFile(bytes, ReadMode::Snapshot), out));
    EXPECT_FALSE(out.finalized);
    EXPECT_FALSE(out.incidents.has_value());
    ASSERT_EQ(out.batches.size(), 1u);
}

TEST(FleetSnapshotTest, BatchCountMismatchIsStructurallyRejected)
{
    FleetCheckpoint checkpoint;
    checkpoint.batches.push_back(makeBatch(0));
    checkpoint.batches.push_back(makeBatch(1));
    const std::vector<std::uint8_t> bytes =
        encodeFleetCheckpoint(checkpoint);

    // Re-frame with one batch record dropped: every remaining record
    // is individually valid, but the set no longer matches the meta
    // record's count.
    RecordFileContents contents =
        decodeRecordFile(bytes, ReadMode::Snapshot);
    ASSERT_TRUE(contents.clean());
    ASSERT_EQ(contents.records.size(), 3u);
    contents.records.pop_back();

    FleetCheckpoint out;
    EXPECT_FALSE(decodeFleetCheckpoint(contents, out));
}

TEST(FleetSnapshotTest, FutureVersionSnapshotIsRejectedWholesale)
{
    FleetCheckpoint checkpoint;
    checkpoint.batches.push_back(makeBatch(0));
    std::vector<std::uint8_t> bytes = encodeFleetCheckpoint(checkpoint);

    // The u32 version field sits right after the u64 magic.
    bytes[8] = static_cast<std::uint8_t>(kSnapshotVersion + 1);
    const RecordFileContents contents =
        decodeRecordFile(bytes, ReadMode::Snapshot);
    EXPECT_EQ(contents.defect, SnapshotDefect::FutureVersion);
    EXPECT_TRUE(contents.records.empty());
}

TEST(FleetSnapshotTest, RegistryFingerprintIsStableAndSensitive)
{
    SyntheticFleetOptions options;
    options.tenants = 4;
    const std::uint64_t a =
        registryFingerprint(TenantRegistry::synthetic(options));
    const std::uint64_t b =
        registryFingerprint(TenantRegistry::synthetic(options));
    EXPECT_EQ(a, b);

    // Any audit-relevant knob must move the fingerprint.
    SyntheticFleetOptions moreTenants = options;
    moreTenants.tenants = 5;
    EXPECT_NE(a, registryFingerprint(
                     TenantRegistry::synthetic(moreTenants)));

    SyntheticFleetOptions otherSeed = options;
    otherSeed.seed = 2;
    EXPECT_NE(a, registryFingerprint(
                     TenantRegistry::synthetic(otherSeed)));

    SyntheticFleetOptions otherCadence = options;
    otherCadence.clusteringIntervalQuanta = 2;
    EXPECT_NE(a, registryFingerprint(
                     TenantRegistry::synthetic(otherCadence)));
}

TEST(FleetSnapshotTest, GoldenV1HeaderBytesArePinned)
{
    // The first 12 bytes of every v1 file: magic "cchsnap!" (stored
    // little-endian) then version 1.  Changing either is a format
    // break and must be a conscious version bump, not an accident.
    const std::vector<std::uint8_t> bytes =
        encodeFleetCheckpoint(FleetCheckpoint{});
    ASSERT_GE(bytes.size(), 12u);
    const std::uint8_t golden[12] = {0x63, 0x63, 0x68, 0x73, 0x6e,
                                     0x61, 0x70, 0x21, 0x01, 0x00,
                                     0x00, 0x00};
    for (std::size_t i = 0; i < 12; ++i)
        EXPECT_EQ(bytes[i], golden[i]) << "offset " << i;
}

TEST(FleetSnapshotTest, GoldenV1CheckpointBytesAreStable)
{
    // Full-image determinism: encoding the same logical checkpoint
    // twice (fresh objects both times) must produce identical bytes,
    // and the FNV of those bytes pins the record layout — if this
    // hash moves, the v1 wire format changed.
    FleetCheckpoint checkpoint;
    checkpoint.registryFingerprint = 0x1234567890ABCDEFull;
    checkpoint.finalized = false;
    checkpoint.batches.push_back(makeBatch(3));

    const std::vector<std::uint8_t> first =
        encodeFleetCheckpoint(checkpoint);
    FleetCheckpoint again;
    again.registryFingerprint = 0x1234567890ABCDEFull;
    again.finalized = false;
    again.batches.push_back(makeBatch(3));
    const std::vector<std::uint8_t> second =
        encodeFleetCheckpoint(again);
    EXPECT_EQ(first, second);
}
