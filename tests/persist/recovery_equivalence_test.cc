/**
 * @file
 * Crash-recovery equivalence tests: the heart of the persistence
 * contract.  A fleet run killed after any number of durably persisted
 * batches and then resumed must emit an incident stream byte-identical
 * to an uninterrupted run — across shard layouts and analysis thread
 * counts, and under every injected snapshot/journal corruption, where
 * the graceful floor is a counted cold start that re-audits, never a
 * crash or a wrong answer.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "faults/fault_injector.hh"
#include "fleet/fleet_auditor.hh"
#include "persist/recovery.hh"
#include "persist/snapshot_file.hh"

using namespace cchunter;
using namespace cchunter::persist;

namespace
{

/** Canonical stream hash of TenantRegistry::synthetic({}) — same
 *  fixture as tests/fleet/incident_stream_golden_test.cc. */
constexpr std::uint64_t kGoldenHash = 11842952238281650353ull;

constexpr std::size_t kFleetTenants = 8;

class RecoveryEquivalenceTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = std::filesystem::path(testing::TempDir()) /
               (std::string("cchunter_recovery_") +
                testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    FleetAuditParams
    params(std::size_t shards, std::size_t analysisThreads) const
    {
        FleetAuditParams p;
        p.shards = shards;
        p.workerThreads = 2;
        p.analysisThreads = analysisThreads;
        p.persist.dir = dir_.string();
        p.persist.checkpointIntervalBatches = 3;
        return p;
    }

    FleetAuditReport
    runFleet(const FleetAuditParams& p) const
    {
        const TenantRegistry registry = TenantRegistry::synthetic({});
        FleetAuditor auditor(registry, p);
        return auditor.run();
    }

    /** Run with persistence, dying after `killAfter` durable batches. */
    FleetAuditReport
    crashRun(std::size_t shards, std::uint64_t killAfter) const
    {
        FleetAuditParams p = params(shards, 1);
        p.simulateCrashAfterBatches = killAfter;
        return runFleet(p);
    }

    /** Resume from the persistence directory and finish the audit. */
    FleetAuditReport
    resumeRun(std::size_t shards, std::size_t analysisThreads = 1) const
    {
        FleetAuditParams p = params(shards, analysisThreads);
        p.persist.resume = true;
        return runFleet(p);
    }

    /** Apply one FaultInjector mutation pass to a persisted file. */
    SnapshotMutation
    corruptFile(const std::string& path, const FaultPlan& plan) const
    {
        bool ok = false;
        std::vector<std::uint8_t> bytes = readFileBytes(path, ok);
        EXPECT_TRUE(ok) << path;
        FaultInjector injector(plan);
        const SnapshotMutation m = injector.mutateSnapshotBytes(bytes);
        EXPECT_TRUE(writeFileAtomic(path, bytes));
        return m;
    }

    std::filesystem::path dir_;
};

bool
hasStat(const std::vector<StatEntry>& entries, const std::string& name)
{
    for (const auto& e : entries)
        if (e.name == name)
            return true;
    return false;
}

} // namespace

TEST_F(RecoveryEquivalenceTest, PersistedRunMatchesBaseline)
{
    // Persistence on, no crash: same stream as ever, with the
    // journal/checkpoint machinery visibly engaged.
    const FleetAuditReport report = runFleet(params(2, 1));
    EXPECT_FALSE(report.crashed);
    EXPECT_EQ(report.incidents.streamHash(), kGoldenHash);
    EXPECT_EQ(report.persist.journalAppends, kFleetTenants);
    EXPECT_GT(report.persist.journalBytes, 0u);
    // 8 batches at interval 3 → 2 mid-run checkpoints + the final one.
    EXPECT_EQ(report.persist.checkpointsWritten, 3u);
    EXPECT_GT(report.persist.lastSnapshotBytes, 0u);
    EXPECT_EQ(report.persist.defects.total(), 0u);
    EXPECT_EQ(report.persist.coldStarts, 0u);
    EXPECT_TRUE(std::filesystem::exists(snapshotPath(
        PersistPolicy{.dir = dir_.string()})));

    const auto entries = report.statEntries();
    EXPECT_TRUE(hasStat(entries, "persist.checkpoints"));
    EXPECT_TRUE(hasStat(entries, "persist.journalAppends"));
    EXPECT_TRUE(hasStat(entries, "fleet.crashed"));
}

TEST_F(RecoveryEquivalenceTest, FinalSnapshotRoundTripsTheIncidentLog)
{
    const FleetAuditReport report = runFleet(params(2, 1));
    const RecordFileContents contents = readRecordFile(
        snapshotPath(PersistPolicy{.dir = dir_.string()}),
        ReadMode::Snapshot);
    ASSERT_TRUE(contents.clean());
    FleetCheckpoint checkpoint;
    ASSERT_TRUE(decodeFleetCheckpoint(contents, checkpoint));
    EXPECT_TRUE(checkpoint.finalized);
    EXPECT_EQ(checkpoint.batches.size(), kFleetTenants);
    ASSERT_TRUE(checkpoint.incidents.has_value());
    EXPECT_EQ(checkpoint.incidents->streamText(),
              report.incidents.streamText());
    EXPECT_EQ(checkpoint.incidents->streamHash(), kGoldenHash);
}

TEST_F(RecoveryEquivalenceTest, KillAtEveryBoundaryResumesByteIdentical)
{
    // The acceptance sweep: die after the K-th durably persisted
    // batch for every K, resume, and demand the uninterrupted stream
    // byte for byte.
    const std::string baseline =
        [&] {
            FleetAuditParams p;
            p.shards = 2;
            p.workerThreads = 2;
            const TenantRegistry registry =
                TenantRegistry::synthetic({});
            return FleetAuditor(registry, p)
                .run()
                .incidents.streamText();
        }();

    for (std::uint64_t k = 1; k <= kFleetTenants; ++k) {
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);

        const FleetAuditReport crashed = crashRun(2, k);
        EXPECT_TRUE(crashed.crashed) << "k=" << k;
        EXPECT_TRUE(crashed.incidents.incidents().empty())
            << "k=" << k;

        const FleetAuditReport resumed = resumeRun(2);
        EXPECT_FALSE(resumed.crashed) << "k=" << k;
        EXPECT_EQ(resumed.incidents.streamText(), baseline)
            << "k=" << k;
        EXPECT_EQ(resumed.incidents.streamHash(), kGoldenHash)
            << "k=" << k;
        EXPECT_EQ(resumed.persist.restoredTenants, k) << "k=" << k;
        // A kill before the first checkpoint leaves no snapshot file
        // — that read counts as `unreadable` and recovery proceeds
        // from the journal.  No other defect class is acceptable.
        EXPECT_EQ(resumed.persist.defects.total(),
                  resumed.persist.defects.unreadable)
            << "k=" << k;
        EXPECT_LE(resumed.persist.defects.unreadable, 1u) << "k=" << k;
        EXPECT_EQ(resumed.persist.coldStarts, 0u) << "k=" << k;

        std::uint64_t recovered = 0;
        for (const auto& shard : resumed.shards)
            recovered += shard.recoveredTenants;
        EXPECT_EQ(recovered, k) << "k=" << k;
    }
}

TEST_F(RecoveryEquivalenceTest, ResumeEquivalenceAcrossLayouts)
{
    // One crash point, every layout: shard count and analysis fan-out
    // must not matter on either side of the kill.
    const std::size_t hw =
        std::max(2u, std::thread::hardware_concurrency());
    for (const std::size_t shards : {std::size_t(1), std::size_t(2),
                                     std::size_t(8)}) {
        for (const std::size_t threads : {std::size_t(1), hw}) {
            std::filesystem::remove_all(dir_);
            std::filesystem::create_directories(dir_);
            const FleetAuditReport crashed = crashRun(shards, 3);
            ASSERT_TRUE(crashed.crashed)
                << "shards=" << shards << " threads=" << threads;
            const FleetAuditReport resumed =
                resumeRun(shards, threads);
            EXPECT_EQ(resumed.incidents.streamHash(), kGoldenHash)
                << "shards=" << shards << " threads=" << threads;
        }
    }
}

TEST_F(RecoveryEquivalenceTest, ResumeRehomesAcrossShardLayoutChange)
{
    // Crash under one shard layout, resume under another: recovered
    // batches are re-homed by the current assignment rule.
    const FleetAuditReport crashed = crashRun(2, 4);
    ASSERT_TRUE(crashed.crashed);
    const FleetAuditReport resumed = resumeRun(8);
    EXPECT_EQ(resumed.incidents.streamHash(), kGoldenHash);
    EXPECT_EQ(resumed.persist.restoredTenants, 4u);
}

TEST_F(RecoveryEquivalenceTest, BitFlippedSnapshotIsQuarantined)
{
    const FleetAuditReport crashed = crashRun(2, 5);
    ASSERT_TRUE(crashed.crashed);

    FaultPlan plan;
    plan.snapshotBitFlipRate = 1.0;
    const SnapshotMutation m = corruptFile(
        snapshotPath(PersistPolicy{.dir = dir_.string()}), plan);
    ASSERT_EQ(m.bitsFlipped, 1u);

    const FleetAuditReport resumed = resumeRun(2);
    // The flip lands somewhere in the image: whatever defect class it
    // produces, the snapshot's contribution is quarantined (counted)
    // and the stream is still the golden one — re-auditing covers
    // whatever could not be restored.
    EXPECT_GE(resumed.persist.defects.total() +
                  resumed.persist.registryMismatches,
              1u);
    EXPECT_EQ(resumed.incidents.streamHash(), kGoldenHash);
    EXPECT_FALSE(resumed.crashed);
}

TEST_F(RecoveryEquivalenceTest, TornSnapshotIsQuarantined)
{
    const FleetAuditReport crashed = crashRun(2, 5);
    ASSERT_TRUE(crashed.crashed);

    FaultPlan plan;
    plan.snapshotTruncateRate = 1.0;
    const SnapshotMutation m = corruptFile(
        snapshotPath(PersistPolicy{.dir = dir_.string()}), plan);
    ASSERT_TRUE(m.truncated);

    const FleetAuditReport resumed = resumeRun(2);
    EXPECT_GE(resumed.persist.defects.total(), 1u);
    EXPECT_EQ(resumed.incidents.streamHash(), kGoldenHash);
}

TEST_F(RecoveryEquivalenceTest, ClobberedMagicIsQuarantined)
{
    const FleetAuditReport crashed = crashRun(2, 5);
    ASSERT_TRUE(crashed.crashed);

    FaultPlan plan;
    plan.snapshotMagicClobberRate = 1.0;
    const SnapshotMutation m = corruptFile(
        snapshotPath(PersistPolicy{.dir = dir_.string()}), plan);
    ASSERT_TRUE(m.magicClobbered);

    const FleetAuditReport resumed = resumeRun(2);
    // A clobbered header *could* still decode as the original magic by
    // chance (it cannot, with 2^-64 probability); assert the expected
    // reason directly.
    EXPECT_GE(resumed.persist.defects.badMagic, 1u);
    EXPECT_EQ(resumed.incidents.streamHash(), kGoldenHash);
}

TEST_F(RecoveryEquivalenceTest, TornJournalTailIsDiscardedNotFatal)
{
    const FleetAuditReport crashed = crashRun(2, 5);
    ASSERT_TRUE(crashed.crashed);

    FaultPlan plan;
    plan.snapshotTruncateRate = 1.0;
    corruptFile(journalPath(PersistPolicy{.dir = dir_.string()}),
                plan);

    const FleetAuditReport resumed = resumeRun(2);
    // The journal's intact prefix (possibly empty) still counts; the
    // snapshot is untouched, so at least the checkpointed batches are
    // restored and the stream is golden either way.
    EXPECT_EQ(resumed.incidents.streamHash(), kGoldenHash);
    EXPECT_FALSE(resumed.crashed);
}

TEST_F(RecoveryEquivalenceTest, EverythingCorruptedFallsBackToColdStart)
{
    const FleetAuditReport crashed = crashRun(2, 6);
    ASSERT_TRUE(crashed.crashed);

    FaultPlan plan;
    plan.snapshotMagicClobberRate = 1.0;
    corruptFile(snapshotPath(PersistPolicy{.dir = dir_.string()}),
                plan);
    corruptFile(journalPath(PersistPolicy{.dir = dir_.string()}),
                plan);

    const FleetAuditReport resumed = resumeRun(2);
    EXPECT_GE(resumed.persist.defects.badMagic, 2u);
    EXPECT_EQ(resumed.persist.restoredTenants, 0u);
    EXPECT_EQ(resumed.persist.coldStarts, 1u);
    // The graceful floor: recover nothing, re-audit everything, same
    // answer.
    EXPECT_EQ(resumed.incidents.streamHash(), kGoldenHash);
}

TEST_F(RecoveryEquivalenceTest, MissingFilesResumeAsColdStart)
{
    // resume=true against an empty directory must behave like a
    // first run, with the unreadable files counted.
    const FleetAuditReport resumed = resumeRun(2);
    EXPECT_EQ(resumed.persist.coldStarts, 1u);
    EXPECT_EQ(resumed.persist.defects.unreadable, 2u);
    EXPECT_EQ(resumed.incidents.streamHash(), kGoldenHash);
}

TEST_F(RecoveryEquivalenceTest, FutureVersionSnapshotColdStartsThatFile)
{
    const FleetAuditReport crashed = crashRun(2, 5);
    ASSERT_TRUE(crashed.crashed);

    // Hand-bump the snapshot's version field (u32 after the u64
    // magic): a downgrade scenario — state written by a newer build.
    const std::string snap =
        snapshotPath(PersistPolicy{.dir = dir_.string()});
    bool ok = false;
    std::vector<std::uint8_t> bytes = readFileBytes(snap, ok);
    ASSERT_TRUE(ok);
    ASSERT_GE(bytes.size(), 12u);
    bytes[8] = static_cast<std::uint8_t>(kSnapshotVersion + 1);
    ASSERT_TRUE(writeFileAtomic(snap, bytes));

    const FleetAuditReport resumed = resumeRun(2);
    EXPECT_EQ(resumed.persist.defects.futureVersion, 1u);
    EXPECT_EQ(resumed.incidents.streamHash(), kGoldenHash);
}

TEST_F(RecoveryEquivalenceTest, ForeignFleetSnapshotIsRefused)
{
    // Persist a *different* fleet into the directory, then resume the
    // default one: the registry fingerprint must refuse the state and
    // the default fleet re-audits from scratch.
    SyntheticFleetOptions other;
    other.seed = 99;
    const TenantRegistry foreign = TenantRegistry::synthetic(other);
    FleetAuditParams p;
    p.shards = 2;
    p.workerThreads = 2;
    p.persist.dir = dir_.string();
    p.simulateCrashAfterBatches = 4;
    FleetAuditor foreignAuditor(foreign, p);
    ASSERT_TRUE(foreignAuditor.run().crashed);

    const FleetAuditReport resumed = resumeRun(2);
    EXPECT_GE(resumed.persist.registryMismatches, 1u);
    EXPECT_EQ(resumed.persist.restoredTenants, 0u);
    EXPECT_EQ(resumed.persist.coldStarts, 1u);
    EXPECT_EQ(resumed.incidents.streamHash(), kGoldenHash);
}

TEST_F(RecoveryEquivalenceTest, PersistPolicyConfigRoundTrip)
{
    PersistPolicy policy;
    policy.dir = "/tmp/fleet-state";
    policy.checkpointIntervalBatches = 9;
    policy.resume = true;
    policy.finalSnapshot = false;

    Config cfg;
    policy.toConfig(cfg);
    const PersistPolicy back = PersistPolicy::fromConfig(cfg);
    EXPECT_EQ(back.dir, policy.dir);
    EXPECT_EQ(back.checkpointIntervalBatches,
              policy.checkpointIntervalBatches);
    EXPECT_EQ(back.resume, policy.resume);
    EXPECT_EQ(back.finalSnapshot, policy.finalSnapshot);
    EXPECT_TRUE(back.enabled());
    EXPECT_FALSE(PersistPolicy{}.enabled());
}

TEST_F(RecoveryEquivalenceTest, CrashSwitchIgnoredWithoutPersistence)
{
    FleetAuditParams p;
    p.shards = 2;
    p.workerThreads = 2;
    p.simulateCrashAfterBatches = 2; // no persist.dir → inert
    const TenantRegistry registry = TenantRegistry::synthetic({});
    const FleetAuditReport report =
        FleetAuditor(registry, p).run();
    EXPECT_FALSE(report.crashed);
    EXPECT_EQ(report.incidents.streamHash(), kGoldenHash);
}
