/**
 * @file
 * Byte-codec and record-container tests for the persistence layer:
 * ByteWriter/ByteReader round-trips and overrun safety, the FNV-1a
 * checksum contract, and every defect class of the framed record file
 * (bad magic, bad checksum, future version, truncated tail,
 * unreadable) under both read modes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "persist/snapshot_file.hh"

using namespace cchunter;
using namespace cchunter::persist;

namespace
{

std::vector<std::uint8_t>
payloadOf(const std::string& text)
{
    return std::vector<std::uint8_t>(text.begin(), text.end());
}

std::string
tempPath(const std::string& name)
{
    return testing::TempDir() + "cchunter_codec_" + name;
}

} // namespace

TEST(SnapshotCodecTest, WriterReaderRoundTripAllTypes)
{
    ByteWriter w;
    w.u8(0xAB);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFull);
    w.f64(-1234.5678);
    w.str("covert channel");
    w.str(""); // empty strings must survive too
    const std::vector<std::uint8_t> bytes = w.take();

    ByteReader r(bytes);
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.f64(), -1234.5678);
    EXPECT_EQ(r.str(), "covert channel");
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.exhausted());
    EXPECT_FALSE(r.bad());
}

TEST(SnapshotCodecTest, EncodingIsLittleEndianAndPacked)
{
    ByteWriter w;
    w.u32(0x01020304u);
    const auto& bytes = w.bytes();
    ASSERT_EQ(bytes.size(), 4u);
    EXPECT_EQ(bytes[0], 0x04);
    EXPECT_EQ(bytes[1], 0x03);
    EXPECT_EQ(bytes[2], 0x02);
    EXPECT_EQ(bytes[3], 0x01);
}

TEST(SnapshotCodecTest, ReaderOverrunIsStickyAndReturnsZeros)
{
    ByteWriter w;
    w.u8(7);
    const std::vector<std::uint8_t> bytes = w.take();
    ByteReader r(bytes);
    EXPECT_EQ(r.u8(), 7);
    // Reading a u64 from an empty reader must not crash — it goes
    // bad and yields zero, and stays bad for every later read.
    EXPECT_EQ(r.u64(), 0u);
    EXPECT_TRUE(r.bad());
    EXPECT_EQ(r.u32(), 0u);
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.bad());
    EXPECT_FALSE(r.exhausted());
}

TEST(SnapshotCodecTest, StringLengthBeyondBufferIsCaught)
{
    // A corrupt length prefix claiming more bytes than exist must not
    // read out of bounds or allocate absurdly.
    ByteWriter w;
    w.u32(0xFFFFFFFFu);
    w.u8('x');
    const std::vector<std::uint8_t> bytes = w.take();
    ByteReader r(bytes);
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.bad());
}

TEST(SnapshotCodecTest, Fnv1a64IsPinnedAndConsistent)
{
    // The offset basis is pinned: IncidentStore::streamHash() and the
    // snapshot record checksums share this function, so the golden
    // stream hash fixtures break if it drifts.
    EXPECT_EQ(fnv1a64(std::string()), 1469598103934665603ull);
    EXPECT_NE(fnv1a64(std::string("a")), fnv1a64(std::string("b")));
    EXPECT_NE(fnv1a64(std::string("ab")), fnv1a64(std::string("ba")));
    const std::string text = "incident 0";
    EXPECT_EQ(fnv1a64(text), fnv1a64(text.data(), text.size()));
    // Chaining: the seed parameter continues a running hash.
    EXPECT_EQ(fnv1a64(std::string("cd"), fnv1a64(std::string("ab"))),
              fnv1a64(std::string("abcd")));
}

TEST(SnapshotCodecTest, RecordFileRoundTripsCleanly)
{
    const std::vector<std::vector<std::uint8_t>> records = {
        payloadOf("first"), payloadOf(""), payloadOf("third record")};
    const std::vector<std::uint8_t> bytes = encodeRecordFile(records);
    for (const ReadMode mode : {ReadMode::Snapshot, ReadMode::Journal}) {
        const RecordFileContents out = decodeRecordFile(bytes, mode);
        EXPECT_TRUE(out.clean());
        EXPECT_EQ(out.records, records);
        EXPECT_EQ(out.discardedRecords, 0u);
    }
}

TEST(SnapshotCodecTest, WrongMagicRejectsInBothModes)
{
    std::vector<std::uint8_t> bytes =
        encodeRecordFile({payloadOf("data")});
    bytes[0] ^= 0xFF;
    for (const ReadMode mode : {ReadMode::Snapshot, ReadMode::Journal}) {
        const RecordFileContents out = decodeRecordFile(bytes, mode);
        EXPECT_EQ(out.defect, SnapshotDefect::BadMagic);
        EXPECT_TRUE(out.records.empty());
    }
}

TEST(SnapshotCodecTest, FutureVersionRejectsInBothModes)
{
    ByteWriter header;
    header.u64(kSnapshotMagic);
    header.u32(kSnapshotVersion + 1);
    std::vector<std::uint8_t> bytes = header.take();
    appendFramedRecord(bytes, payloadOf("from the future"));
    for (const ReadMode mode : {ReadMode::Snapshot, ReadMode::Journal}) {
        const RecordFileContents out = decodeRecordFile(bytes, mode);
        EXPECT_EQ(out.defect, SnapshotDefect::FutureVersion);
        EXPECT_TRUE(out.records.empty());
    }
}

TEST(SnapshotCodecTest, ChecksumFlipSplitsByMode)
{
    // Flip one payload bit of the SECOND record: snapshot mode must
    // reject everything, journal mode keeps the intact first record.
    std::vector<std::uint8_t> bytes =
        encodeRecordFile({payloadOf("keep me"), payloadOf("flip me")});
    bytes[bytes.size() - 1] ^= 0x01;

    const RecordFileContents snap =
        decodeRecordFile(bytes, ReadMode::Snapshot);
    EXPECT_EQ(snap.defect, SnapshotDefect::BadChecksum);
    EXPECT_TRUE(snap.records.empty());
    EXPECT_EQ(snap.discardedRecords, 2u);

    const RecordFileContents journal =
        decodeRecordFile(bytes, ReadMode::Journal);
    EXPECT_EQ(journal.defect, SnapshotDefect::BadChecksum);
    ASSERT_EQ(journal.records.size(), 1u);
    EXPECT_EQ(journal.records[0], payloadOf("keep me"));
    EXPECT_EQ(journal.discardedRecords, 1u);
}

TEST(SnapshotCodecTest, TornTailSplitsByMode)
{
    // Cut the file mid-record: the torn frame is detected by its
    // length prefix, never misparsed.
    std::vector<std::uint8_t> bytes = encodeRecordFile(
        {payloadOf("whole"), payloadOf("this one gets torn")});
    bytes.resize(bytes.size() - 5);

    const RecordFileContents snap =
        decodeRecordFile(bytes, ReadMode::Snapshot);
    EXPECT_EQ(snap.defect, SnapshotDefect::TruncatedTail);
    EXPECT_TRUE(snap.records.empty());

    const RecordFileContents journal =
        decodeRecordFile(bytes, ReadMode::Journal);
    EXPECT_EQ(journal.defect, SnapshotDefect::TruncatedTail);
    ASSERT_EQ(journal.records.size(), 1u);
    EXPECT_EQ(journal.records[0], payloadOf("whole"));
}

TEST(SnapshotCodecTest, EveryTruncationPointIsSurvivedWithoutCrash)
{
    // Exhaustive torn-write sweep: any prefix of a valid file must
    // decode to *something* counted — never a crash, never a bogus
    // extra record.
    const std::vector<std::uint8_t> whole = encodeRecordFile(
        {payloadOf("alpha"), payloadOf("beta"), payloadOf("gamma")});
    for (std::size_t cut = 0; cut < whole.size(); ++cut) {
        const std::vector<std::uint8_t> prefix(whole.begin(),
                                               whole.begin() + cut);
        const RecordFileContents out =
            decodeRecordFile(prefix, ReadMode::Journal);
        EXPECT_LE(out.records.size(), 3u) << "cut=" << cut;
        if (cut < whole.size()) {
            EXPECT_FALSE(out.clean() && out.records.size() == 3)
                << "cut=" << cut;
        }
        for (const auto& rec : out.records)
            EXPECT_TRUE(rec == payloadOf("alpha") ||
                        rec == payloadOf("beta") ||
                        rec == payloadOf("gamma"))
                << "cut=" << cut;
    }
}

TEST(SnapshotCodecTest, MissingFileReadsAsUnreadable)
{
    const RecordFileContents out = readRecordFile(
        tempPath("never_written.snap"), ReadMode::Snapshot);
    EXPECT_EQ(out.defect, SnapshotDefect::Unreadable);
    EXPECT_TRUE(out.records.empty());
}

TEST(SnapshotCodecTest, AtomicWriteRoundTripsThroughDisk)
{
    const std::string path = tempPath("atomic.snap");
    const std::vector<std::uint8_t> bytes =
        encodeRecordFile({payloadOf("persisted")});
    ASSERT_TRUE(writeFileAtomic(path, bytes));
    // No .tmp residue after a successful rename.
    std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
    EXPECT_EQ(tmp, nullptr);
    if (tmp)
        std::fclose(tmp);
    const RecordFileContents out =
        readRecordFile(path, ReadMode::Snapshot);
    EXPECT_TRUE(out.clean());
    ASSERT_EQ(out.records.size(), 1u);
    EXPECT_EQ(out.records[0], payloadOf("persisted"));
    std::remove(path.c_str());
}

TEST(SnapshotCodecTest, DefectCountsAccountEveryReason)
{
    DefectCounts counts;
    counts.count(SnapshotDefect::BadMagic);
    counts.count(SnapshotDefect::BadChecksum);
    counts.count(SnapshotDefect::BadChecksum);
    counts.count(SnapshotDefect::FutureVersion);
    counts.count(SnapshotDefect::TruncatedTail);
    counts.count(SnapshotDefect::Unreadable);
    counts.count(SnapshotDefect::None); // not a defect, not counted
    EXPECT_EQ(counts.badMagic, 1u);
    EXPECT_EQ(counts.badChecksum, 2u);
    EXPECT_EQ(counts.futureVersion, 1u);
    EXPECT_EQ(counts.truncatedTail, 1u);
    EXPECT_EQ(counts.unreadable, 1u);
    EXPECT_EQ(counts.total(), 6u);

    DefectCounts more;
    more.count(SnapshotDefect::BadMagic);
    counts.accumulate(more);
    EXPECT_EQ(counts.badMagic, 2u);
    EXPECT_EQ(counts.total(), 7u);
}

TEST(SnapshotCodecTest, DefectNamesAreStable)
{
    EXPECT_STREQ(snapshotDefectName(SnapshotDefect::None), "none");
    EXPECT_STREQ(snapshotDefectName(SnapshotDefect::BadMagic),
                 "badMagic");
    EXPECT_STREQ(snapshotDefectName(SnapshotDefect::BadChecksum),
                 "badChecksum");
    EXPECT_STREQ(snapshotDefectName(SnapshotDefect::FutureVersion),
                 "futureVersion");
    EXPECT_STREQ(snapshotDefectName(SnapshotDefect::TruncatedTail),
                 "truncatedTail");
    EXPECT_STREQ(snapshotDefectName(SnapshotDefect::Unreadable),
                 "unreadable");
}
