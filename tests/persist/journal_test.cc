/**
 * @file
 * Append-only journal tests: the append/read round-trip, checkpoint
 * compaction via reset(), and torn-write tolerance — a journal cut or
 * corrupted mid-append must yield its intact prefix with the tail
 * defect counted, never a crash or a phantom record.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "persist/journal.hh"

using namespace cchunter;
using namespace cchunter::persist;

namespace
{

std::vector<std::uint8_t>
payloadOf(const std::string& text)
{
    return std::vector<std::uint8_t>(text.begin(), text.end());
}

class JournalTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = testing::TempDir() + "cchunter_journal_" +
                testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".journal";
        std::remove(path_.c_str());
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

} // namespace

TEST_F(JournalTest, AppendReadRoundTrip)
{
    const auto header = payloadOf("meta");
    JournalWriter writer;
    ASSERT_TRUE(writer.open(path_, header));
    EXPECT_TRUE(writer.isOpen());
    ASSERT_TRUE(writer.append(payloadOf("batch 0")));
    ASSERT_TRUE(writer.append(payloadOf("batch 1")));
    EXPECT_EQ(writer.appends(), 2u);
    EXPECT_GT(writer.bytesWritten(), 0u);
    writer.close();
    EXPECT_FALSE(writer.isOpen());

    const JournalContents out = readJournal(path_);
    EXPECT_TRUE(out.clean());
    ASSERT_EQ(out.records.size(), 3u);
    EXPECT_EQ(out.records[0], header);
    EXPECT_EQ(out.records[1], payloadOf("batch 0"));
    EXPECT_EQ(out.records[2], payloadOf("batch 1"));
}

TEST_F(JournalTest, ResetCompactsBackToHeader)
{
    const auto header = payloadOf("meta");
    JournalWriter writer;
    ASSERT_TRUE(writer.open(path_, header));
    ASSERT_TRUE(writer.append(payloadOf("absorbed by checkpoint")));
    ASSERT_TRUE(writer.reset());
    ASSERT_TRUE(writer.append(payloadOf("after checkpoint")));
    writer.close();

    const JournalContents out = readJournal(path_);
    EXPECT_TRUE(out.clean());
    ASSERT_EQ(out.records.size(), 2u);
    EXPECT_EQ(out.records[0], header);
    EXPECT_EQ(out.records[1], payloadOf("after checkpoint"));
}

TEST_F(JournalTest, OpenTruncatesAnyPreviousContents)
{
    JournalWriter writer;
    ASSERT_TRUE(writer.open(path_, payloadOf("old header")));
    ASSERT_TRUE(writer.append(payloadOf("stale record")));
    writer.close();

    JournalWriter second;
    ASSERT_TRUE(second.open(path_, payloadOf("new header")));
    second.close();

    const JournalContents out = readJournal(path_);
    EXPECT_TRUE(out.clean());
    ASSERT_EQ(out.records.size(), 1u);
    EXPECT_EQ(out.records[0], payloadOf("new header"));
}

TEST_F(JournalTest, TornTailKeepsIntactPrefix)
{
    JournalWriter writer;
    ASSERT_TRUE(writer.open(path_, payloadOf("meta")));
    ASSERT_TRUE(writer.append(payloadOf("survives")));
    ASSERT_TRUE(writer.append(payloadOf("dies in the crash")));
    const std::uint64_t fullBytes = writer.bytesWritten();
    writer.close();

    // Simulate a crash mid-append: chop a few bytes off the file.
    (void)fullBytes;
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_GT(size, 4);
    ASSERT_EQ(truncate(path_.c_str(), size - 4), 0);

    const JournalContents out = readJournal(path_);
    EXPECT_EQ(out.tailDefect, SnapshotDefect::TruncatedTail);
    ASSERT_EQ(out.records.size(), 2u);
    EXPECT_EQ(out.records[0], payloadOf("meta"));
    EXPECT_EQ(out.records[1], payloadOf("survives"));
}

TEST_F(JournalTest, CorruptTailKeepsIntactPrefix)
{
    JournalWriter writer;
    ASSERT_TRUE(writer.open(path_, payloadOf("meta")));
    ASSERT_TRUE(writer.append(payloadOf("survives")));
    ASSERT_TRUE(writer.append(payloadOf("bit-flipped")));
    writer.close();

    // Flip the final payload byte — checksum catches it.
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -1, SEEK_END);
    const int byte = std::fgetc(f);
    ASSERT_NE(byte, EOF);
    std::fseek(f, -1, SEEK_END);
    std::fputc(byte ^ 0x40, f);
    std::fclose(f);

    const JournalContents out = readJournal(path_);
    EXPECT_EQ(out.tailDefect, SnapshotDefect::BadChecksum);
    ASSERT_EQ(out.records.size(), 2u);
    EXPECT_EQ(out.records[1], payloadOf("survives"));
}

TEST_F(JournalTest, MissingJournalReadsAsUnreadable)
{
    const JournalContents out = readJournal(path_);
    EXPECT_EQ(out.tailDefect, SnapshotDefect::Unreadable);
    EXPECT_TRUE(out.records.empty());
}

TEST_F(JournalTest, EmptyJournalIsCleanAfterOpen)
{
    JournalWriter writer;
    ASSERT_TRUE(writer.open(path_, payloadOf("meta")));
    writer.close();
    const JournalContents out = readJournal(path_);
    EXPECT_TRUE(out.clean());
    ASSERT_EQ(out.records.size(), 1u);
}

TEST_F(JournalTest, OpenOnUnwritablePathFails)
{
    JournalWriter writer;
    EXPECT_FALSE(writer.open("/nonexistent-dir/x/y.journal",
                             payloadOf("meta")));
    EXPECT_FALSE(writer.isOpen());
}
