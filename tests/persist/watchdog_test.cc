/**
 * @file
 * Watchdog supervision tests: a shard worker that dies mid-plan is
 * detected, its unclaimed tenants are redispatched after backoff, and
 * the incident stream still matches the golden fixture — exactly-once
 * auditing under restart.  An exhausted restart budget degrades to
 * counted abandonment, never a hang.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "fleet/fleet_auditor.hh"

using namespace cchunter;

namespace
{

/** Canonical stream hash of TenantRegistry::synthetic({}) — same
 *  fixture as tests/fleet/incident_stream_golden_test.cc. */
constexpr std::uint64_t kGoldenHash = 11842952238281650353ull;

FleetAuditParams
watchdogParams()
{
    FleetAuditParams params;
    params.shards = 2;
    params.workerThreads = 2;
    params.watchdog.enabled = true;
    // Simulated deaths are detected via the died/vanished flags, not
    // the heartbeat timeout — keep the timeout generous so a busy CI
    // box slow-walking a healthy tenant audit never reads as a stall.
    params.watchdog.stallTimeoutMs = 60000.0;
    params.watchdog.pollIntervalMs = 5.0;
    params.watchdog.backoffBaseMs = 1.0;
    return params;
}

FleetAuditReport
runFleet(const FleetAuditParams& params)
{
    const TenantRegistry registry = TenantRegistry::synthetic({});
    FleetAuditor auditor(registry, params);
    return auditor.run();
}

bool
hasStat(const std::vector<StatEntry>& entries, const std::string& name)
{
    for (const auto& e : entries)
        if (e.name == name)
            return true;
    return false;
}

} // namespace

TEST(WatchdogTest, QuietOnHealthyRun)
{
    const FleetAuditReport report = runFleet(watchdogParams());
    EXPECT_EQ(report.watchdog.stallsDetected, 0u);
    EXPECT_EQ(report.watchdog.restartsDispatched, 0u);
    EXPECT_EQ(report.watchdog.tenantsRedispatched, 0u);
    EXPECT_EQ(report.watchdog.abandonedTenants, 0u);
    for (const auto& shard : report.shards)
        EXPECT_EQ(shard.restarts, 0u);
    EXPECT_EQ(report.incidents.streamHash(), kGoldenHash);
}

TEST(WatchdogTest, DeadWorkerIsRedispatchedAndStreamIsUnchanged)
{
    // Shard 0 of 2 holds tenants {0,2,4,6}; its first worker dies
    // after auditing one of them.  The watchdog must pick the other
    // three back up and the stream must be the uninterrupted one.
    FleetAuditParams params = watchdogParams();
    params.watchdog.simulateStallShard = 0;
    params.watchdog.simulateStallAfterTenants = 1;
    const FleetAuditReport report = runFleet(params);

    EXPECT_GE(report.watchdog.stallsDetected, 1u);
    EXPECT_GE(report.watchdog.restartsDispatched, 1u);
    EXPECT_EQ(report.watchdog.tenantsRedispatched, 3u);
    EXPECT_EQ(report.watchdog.abandonedTenants, 0u);
    ASSERT_GE(report.shards.size(), 1u);
    EXPECT_GE(report.shards[0].restarts, 1u);
    EXPECT_EQ(report.tenantsAudited, 8u);
    EXPECT_EQ(report.incidents.streamHash(), kGoldenHash);

    const auto entries = report.statEntries();
    EXPECT_TRUE(hasStat(entries, "fleet.shard0.restarts"));
    EXPECT_TRUE(hasStat(entries, "fleet.watchdog.restarts"));
    EXPECT_TRUE(hasStat(entries, "fleet.watchdog.redispatchedTenants"));
}

TEST(WatchdogTest, ImmediateDeathRecoversTheWholeShard)
{
    // The worker dies before auditing anything: every tenant of the
    // shard is redispatched.
    FleetAuditParams params = watchdogParams();
    params.watchdog.simulateStallShard = 1;
    params.watchdog.simulateStallAfterTenants = 0;
    const FleetAuditReport report = runFleet(params);

    EXPECT_EQ(report.watchdog.tenantsRedispatched, 4u);
    EXPECT_EQ(report.tenantsAudited, 8u);
    EXPECT_EQ(report.incidents.streamHash(), kGoldenHash);
}

TEST(WatchdogTest, ExhaustedBudgetAbandonsRemainingTenants)
{
    // No restart budget: the dead shard's remaining tenants are
    // abandoned — counted, reported, and the run still terminates
    // with the healthy shard's incidents.
    FleetAuditParams params = watchdogParams();
    params.watchdog.simulateStallShard = 0;
    params.watchdog.simulateStallAfterTenants = 1;
    params.watchdog.maxRestartsPerShard = 0;
    const FleetAuditReport report = runFleet(params);

    EXPECT_GE(report.watchdog.stallsDetected, 1u);
    EXPECT_EQ(report.watchdog.restartsDispatched, 0u);
    EXPECT_EQ(report.watchdog.abandonedTenants, 3u);
    EXPECT_EQ(report.tenantsAudited, 5u);
    EXPECT_NE(report.incidents.streamHash(), kGoldenHash);
    EXPECT_FALSE(report.crashed);
}

TEST(WatchdogTest, SupervisionComposesWithPersistence)
{
    // Watchdog restart and crash-safe persistence in one run: the
    // redispatched tenants are journaled like any others and the
    // stream stays golden.
    const std::string dir =
        testing::TempDir() + "cchunter_watchdog_persist";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    FleetAuditParams params = watchdogParams();
    params.watchdog.simulateStallShard = 0;
    params.watchdog.simulateStallAfterTenants = 2;
    params.persist.dir = dir;
    const FleetAuditReport report = runFleet(params);

    EXPECT_GE(report.shards[0].restarts, 1u);
    EXPECT_EQ(report.persist.journalAppends, 8u);
    EXPECT_EQ(report.incidents.streamHash(), kGoldenHash);
    std::filesystem::remove_all(dir);
}
