#include <gtest/gtest.h>

#include "auditor/histogram_buffer.hh"

namespace cchunter
{
namespace
{

TEST(HistogramBufferTest, EventsBinnedByWindow)
{
    HistogramBuffer hb(100, 0);
    hb.recordEvent(10);
    hb.recordEvent(20);
    hb.recordEvent(150); // second window
    Histogram h = hb.snapshotAndReset(300);
    // Windows: [0,100): 2 events; [100,200): 1; [200,300): 0.
    EXPECT_EQ(h.bin(2), 1u);
    EXPECT_EQ(h.bin(1), 1u);
    EXPECT_EQ(h.bin(0), 1u);
    EXPECT_EQ(h.totalSamples(), 3u);
}

TEST(HistogramBufferTest, EmptyWindowsCountAsZeroDensity)
{
    HistogramBuffer hb(100, 0);
    Histogram h = hb.snapshotAndReset(1000);
    EXPECT_EQ(h.bin(0), 10u);
}

TEST(HistogramBufferTest, SnapshotResetsOrigin)
{
    HistogramBuffer hb(100, 0);
    hb.recordEvent(50);
    hb.snapshotAndReset(100);
    hb.recordEvent(150); // first window of the new epoch
    Histogram h = hb.snapshotAndReset(200);
    EXPECT_EQ(h.bin(1), 1u);
    EXPECT_EQ(h.totalSamples(), 1u);
}

TEST(HistogramBufferTest, PartialWindowExcluded)
{
    HistogramBuffer hb(100, 0);
    hb.recordEvent(250);
    Histogram h = hb.snapshotAndReset(270); // window [200,300) incomplete
    EXPECT_EQ(h.totalSamples(), 2u); // only [0,100) and [100,200)
    EXPECT_EQ(h.bin(0), 2u);
}

TEST(HistogramBufferTest, BurstSpreadAcrossWindows)
{
    HistogramBuffer hb(100, 0);
    // 10 events at t = 0, 25, 50, ..., 225: windows get 4, 4, 2.
    hb.recordBurst(0, 10, 25);
    Histogram h = hb.snapshotAndReset(300);
    EXPECT_EQ(h.bin(4), 2u);
    EXPECT_EQ(h.bin(2), 1u);
    EXPECT_EQ(hb.totalEvents(), 10u);
}

TEST(HistogramBufferTest, BurstSingleWindow)
{
    HistogramBuffer hb(1000, 0);
    hb.recordBurst(100, 50, 2);
    Histogram h = hb.snapshotAndReset(1000);
    EXPECT_EQ(h.bin(50), 1u);
}

TEST(HistogramBufferTest, BurstMatchesEquivalentEvents)
{
    // A burst must integrate exactly like its expansion.
    HistogramBuffer burst(70, 0);
    HistogramBuffer single(70, 0);
    burst.recordBurst(13, 37, 11);
    for (std::uint64_t i = 0; i < 37; ++i)
        single.recordEvent(13 + i * 11);
    Histogram a = burst.snapshotAndReset(1000);
    Histogram b = single.snapshotAndReset(1000);
    for (std::size_t i = 0; i < a.numBins(); ++i)
        EXPECT_EQ(a.bin(i), b.bin(i)) << "bin " << i;
}

TEST(HistogramBufferTest, ZeroCountBurstIsNoOp)
{
    HistogramBuffer hb(100, 0);
    hb.recordBurst(0, 0, 10);
    EXPECT_EQ(hb.totalEvents(), 0u);
}

TEST(HistogramBufferTest, DensityOverflowGoesToLastBin)
{
    HistogramBufferParams p;
    p.numBins = 8;
    HistogramBuffer hb(1000, 0, p);
    hb.recordBurst(0, 100, 1);
    Histogram h = hb.snapshotAndReset(1000);
    EXPECT_EQ(h.bin(7), 1u);
}

TEST(HistogramBufferTest, Saturate16CapsAccumulator)
{
    HistogramBufferParams p;
    p.saturate16 = true;
    HistogramBuffer hb(1000000, 0, p);
    hb.recordBurst(0, 100000, 1); // > 65535 events in one window
    Histogram h = hb.snapshotAndReset(1000000);
    // The window's density saturated at 65535 -> last bin (127).
    EXPECT_EQ(h.bin(127), 1u);
    EXPECT_EQ(h.countInRange(0, 126), 0u);
}

TEST(HistogramBufferTest, EventBeforeOriginPanics)
{
    HistogramBuffer hb(100, 500);
    EXPECT_ANY_THROW(hb.recordEvent(499));
}

TEST(HistogramBufferTest, InvalidParamsThrow)
{
    EXPECT_ANY_THROW(HistogramBuffer(0, 0));
}

TEST(HistogramBufferTest, PaperScaleQuantum)
{
    // Bus channel parameters: delta-t 100k cycles, quantum 250M cycles
    // -> exactly 2500 density windows per quantum.
    HistogramBuffer hb(100000, 0);
    Histogram h = hb.snapshotAndReset(250000000);
    EXPECT_EQ(h.totalSamples(), 2500u);
}

} // namespace
} // namespace cchunter
