#include <gtest/gtest.h>

#include <vector>

#include "auditor/conflict_miss_tracker.hh"
#include "auditor/lru_stack_tracker.hh"
#include "mem/cache.hh"
#include "util/bloom_filter.hh"
#include "util/rng.hh"

namespace cchunter
{
namespace
{

/** 8 sets x 2 ways = 16 blocks. */
CacheGeometry
tinyGeom()
{
    return CacheGeometry{1024, 2, 64};
}

TEST(ConflictMissTrackerTest, DefaultThresholdIsQuarterCapacity)
{
    ConflictMissTracker t(4096);
    EXPECT_EQ(t.threshold(), 1024u);
}

TEST(ConflictMissTrackerTest, PrematureEvictionIsConflictMiss)
{
    Cache cache("t", tinyGeom());
    ConflictMissTracker tracker(cache.geometry().numBlocks());
    cache.setMonitor(&tracker);
    std::vector<ConflictMissEvent> events;
    tracker.addListener([&](const ConflictMissEvent& e) {
        events.push_back(e);
    });

    // Three lines to set 0 (stride = 8 sets * 64 B = 512 B): C evicts A
    // while the cache is nearly empty -> refetching A is a conflict
    // miss.
    cache.access(0x0000, 1, 0);
    cache.access(0x0200, 2, 1);
    cache.access(0x0400, 3, 2); // evicts A (premature)
    EXPECT_EQ(tracker.conflictMisses(), 0u);
    cache.access(0x0000, 1, 3); // conflict miss, evicts B
    EXPECT_EQ(tracker.conflictMisses(), 1u);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].replacer, 1);
    EXPECT_EQ(events[0].victim, 2); // B's owner
    EXPECT_EQ(events[0].time, 3u);
}

TEST(ConflictMissTrackerTest, ColdMissesAreNotConflicts)
{
    Cache cache("t", tinyGeom());
    ConflictMissTracker tracker(cache.geometry().numBlocks());
    cache.setMonitor(&tracker);
    for (Addr a = 0; a < 16 * 64; a += 64)
        cache.access(a, 0, 0);
    EXPECT_EQ(tracker.conflictMisses(), 0u);
    EXPECT_EQ(tracker.totalMisses(), 16u);
}

TEST(ConflictMissTrackerTest, CapacityEvictionsAgeOut)
{
    // Stream far more distinct blocks than the cache holds: re-access
    // of long-gone lines must not count as conflict misses because the
    // generations have rotated them away.
    Cache cache("t", tinyGeom());
    ConflictMissTracker tracker(cache.geometry().numBlocks());
    cache.setMonitor(&tracker);
    cache.access(0x0000, 0, 0);
    // Touch 16 * 8 distinct other blocks (many generations).
    for (Addr a = 0x10000; a < 0x10000 + 128 * 64; a += 64)
        cache.access(a, 0, 1);
    const auto before = tracker.conflictMisses();
    cache.access(0x0000, 0, 2);
    EXPECT_EQ(tracker.conflictMisses(), before);
}

TEST(ConflictMissTrackerTest, GenerationsRotateAtThreshold)
{
    ConflictMissTracker t(16); // threshold = 4
    // Touch 4 distinct blocks -> one rotation.
    for (std::size_t b = 0; b < 4; ++b)
        t.onAccess(b, b * 64, 0, 0);
    EXPECT_EQ(t.rotations(), 1u);
    // Re-touching the same blocks in the *new* generation counts anew.
    for (std::size_t b = 0; b < 4; ++b)
        t.onAccess(b, b * 64, 0, 1);
    EXPECT_EQ(t.rotations(), 2u);
}

TEST(ConflictMissTrackerTest, RepeatAccessesDoNotAdvanceGeneration)
{
    ConflictMissTracker t(16);
    for (int i = 0; i < 100; ++i)
        t.onAccess(0, 0, 0, 0);
    EXPECT_EQ(t.rotations(), 0u);
}

TEST(ConflictMissTrackerTest, InvalidConfigThrows)
{
    EXPECT_ANY_THROW(ConflictMissTracker(0));
    ConflictTrackerParams p;
    p.numGenerations = 1;
    EXPECT_ANY_THROW(ConflictMissTracker(16, p));
    p.numGenerations = 9;
    EXPECT_ANY_THROW(ConflictMissTracker(16, p));
}

TEST(LruStackTrackerTest, ExactPrematureEvictionCheck)
{
    Cache cache("t", tinyGeom());
    LruStackTracker oracle(cache.geometry().numBlocks());
    cache.setMonitor(&oracle);
    cache.access(0x0000, 0, 0);
    cache.access(0x0200, 0, 1);
    cache.access(0x0400, 0, 2); // evicts 0x0000 prematurely
    EXPECT_TRUE(oracle.residentInIdealCache(0x0000));
    cache.access(0x0000, 0, 3);
    EXPECT_EQ(oracle.conflictMisses(), 1u);
}

TEST(LruStackTrackerTest, CapacityBound)
{
    LruStackTracker oracle(4);
    for (Addr a = 0; a < 8 * 64; a += 64)
        oracle.onAccess(0, a, 0, 0);
    // Only the last 4 lines remain in the ideal cache.
    EXPECT_FALSE(oracle.residentInIdealCache(0x0000));
    EXPECT_TRUE(oracle.residentInIdealCache(7 * 64));
    EXPECT_TRUE(oracle.residentInIdealCache(4 * 64));
}

/**
 * Property test: on random access streams, the practical tracker's
 * conflict-miss decisions closely follow the LRU-stack oracle.  The
 * approximation errs in both directions (generation granularity, bloom
 * false positives) but must agree on the vast majority of misses.
 */
class TrackerAgreementTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TrackerAgreementTest, PracticalApproximatesOracle)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);

    // Two independent caches with identical streams so each monitor
    // sees identical structural events.
    Cache cache_a("a", CacheGeometry{8192, 4, 64}); // 128 blocks
    Cache cache_b("b", CacheGeometry{8192, 4, 64});
    ConflictMissTracker practical(128);
    LruStackTracker oracle(128);

    // Count agreement via parallel event streams.
    std::uint64_t practical_hits = 0, oracle_hits = 0;
    practical.addListener(
        [&](const ConflictMissEvent&) { ++practical_hits; });
    oracle.addListener([&](const ConflictMissEvent&) { ++oracle_hits; });
    cache_a.setMonitor(&practical);
    cache_b.setMonitor(&oracle);

    // Zipf-ish reuse pattern over 4x capacity worth of lines.
    std::vector<Addr> pool;
    for (Addr a = 0; a < 512; ++a)
        pool.push_back(a * 64);
    for (int i = 0; i < 20000; ++i) {
        const std::size_t r = rng.nextBelow(512);
        const Addr addr = pool[(r * r) / 512]; // skew toward low lines
        const auto ctx = static_cast<ContextId>(rng.nextBelow(4));
        cache_a.access(addr, ctx, i);
        cache_b.access(addr, ctx, i);
    }

    ASSERT_GT(oracle_hits, 100u) << "stream produced too few conflicts";
    const double ratio = static_cast<double>(practical_hits) /
                         static_cast<double>(oracle_hits);
    EXPECT_GT(ratio, 0.6) << "practical tracker misses too many";
    EXPECT_LT(ratio, 1.4) << "practical tracker over-reports";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackerAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ConflictMissTrackerTest, BloomFalsePositivesNearTheoreticalBound)
{
    // The tracker's design occupancy: each generation filter holds N
    // bits and absorbs one generation's worth of distinct blocks
    // (N / numGenerations = N/4 keys) before rotating.  The measured
    // false-positive rate at that occupancy must sit within 2x of the
    // theoretical 3-hash bound (1 - e^{-kn/m})^k.
    constexpr std::size_t kBits = 4096;
    constexpr std::size_t kKeys = kBits / 4;
    BloomFilter filter(kBits, 3);
    Rng rng(1234);

    std::vector<std::uint64_t> inserted;
    inserted.reserve(kKeys);
    while (inserted.size() < kKeys) {
        const std::uint64_t key = rng.next();
        if (!filter.mayContain(key)) {
            filter.insert(key);
            inserted.push_back(key);
        }
    }

    const double theoretical =
        filter.estimatedFalsePositiveRate(kKeys);
    ASSERT_GT(theoretical, 0.0);

    std::uint64_t false_positives = 0;
    constexpr std::uint64_t kProbes = 200000;
    for (std::uint64_t i = 0; i < kProbes; ++i) {
        // Probe keys disjoint from the inserted stream: a fresh Rng
        // stream offset far beyond the insert draws.
        const std::uint64_t key = rng.next();
        false_positives += filter.mayContain(key);
    }
    const double measured =
        static_cast<double>(false_positives) /
        static_cast<double>(kProbes);
    EXPECT_LE(measured, 2.0 * theoretical)
        << "measured " << measured << " vs theoretical "
        << theoretical;
    EXPECT_GT(measured, 0.0); // kBits/4 keys: FPs must exist
}

TEST(ConflictMissTrackerTest, AliasHookForcesConflictAndCounts)
{
    // The fault-injection alias hook flips would-be clean misses into
    // conflict reports, modelling Bloom-filter aliasing; every forced
    // alias is counted for the integrity ledger.
    Cache cache("t", tinyGeom());
    ConflictMissTracker tracker(cache.geometry().numBlocks());
    cache.setMonitor(&tracker);
    tracker.setAliasHook([] { return true; });

    std::uint64_t events = 0;
    tracker.addListener([&](const ConflictMissEvent&) { ++events; });

    // A cold-miss-only stream: without the hook no conflicts at all
    // (ColdMissesAreNotConflicts above); with it, re-fetches of aged-
    // out lines alias into conflicts.
    for (Addr a = 0; a < 16 * 64; a += 64)
        cache.access(a, 0, 0);
    for (Addr a = 0; a < 16 * 64; a += 64)
        cache.access(a, 1, 1);
    EXPECT_GT(tracker.forcedAliases(), 0u);
    EXPECT_EQ(tracker.conflictMisses(), tracker.forcedAliases());
    EXPECT_EQ(events, tracker.forcedAliases());
}

} // namespace
} // namespace cchunter
