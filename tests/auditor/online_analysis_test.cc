/**
 * @file
 * Online-analysis cadence tests: the daemon running the paper's live
 * schedule (clustering every N quanta, autocorrelation every quantum)
 * and raising alarms with bounded detection latency.
 */

#include <gtest/gtest.h>

#include <memory>

#include "auditor/cc_auditor.hh"
#include "auditor/daemon.hh"
#include "channels/cache_channel.hh"
#include "channels/divider_channel.hh"
#include "sim/machine.hh"
#include "workloads/suites.hh"

namespace cchunter
{
namespace
{

MachineParams
smallMachine()
{
    MachineParams p;
    p.scheduler.quantum = 2500000;
    return p;
}

ChannelTiming
fastTiming()
{
    ChannelTiming t;
    t.start = 1000;
    t.bandwidthBps = 10000.0;
    return t;
}

TEST(OnlineAnalysisTest, DividerChannelAlarmsAtFirstInterval)
{
    Machine m(smallMachine());
    Rng rng(1);
    DividerTrojanParams tp;
    tp.timing = fastTiming();
    tp.message = Message::random64(rng);
    m.addProcess(std::make_unique<DividerTrojan>(tp), 0);
    DividerSpyParams sp;
    sp.timing = fastTiming();
    m.addProcess(std::make_unique<DividerSpy>(sp), 1);

    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorDivider(key, 0, 0);
    AuditDaemon daemon(m, auditor);

    OnlineAnalysisParams params;
    params.clusteringIntervalQuanta = 4;
    int callbacks = 0;
    daemon.enableOnlineAnalysis(
        params, [&](const Alarm& a) { ++callbacks; });

    m.runQuanta(8);
    // Intervals complete after quanta 4 and 8: two alarms.
    ASSERT_GE(daemon.alarms().size(), 2u);
    EXPECT_EQ(callbacks, static_cast<int>(daemon.alarms().size()));
    EXPECT_EQ(daemon.firstAlarmQuantum(0), 3u); // quantum index 3
    EXPECT_NE(daemon.alarms()[0].summary.find("DETECTED"),
              std::string::npos);
}

TEST(OnlineAnalysisTest, CacheChannelAlarmsEveryQuantum)
{
    MachineParams mp = smallMachine();
    mp.mem.l2 = CacheGeometry{256 * 1024, 1, 64};
    Machine m(mp);
    ChannelTiming timing;
    timing.start = 1000;
    timing.bandwidthBps = 1000.0; // one bit per quantum
    Rng rng(2);

    CacheChannelLayout layout;
    layout.l2NumSets = 4096;
    layout.channelSets = 256;

    CacheTrojanParams tp;
    tp.timing = timing;
    tp.message = Message::random64(rng);
    tp.layout = layout;
    tp.roundsPerBit = 4;
    m.addProcess(std::make_unique<CacheTrojan>(tp), 0);
    CacheSpyParams sp;
    sp.timing = timing;
    sp.layout = layout;
    sp.roundsPerBit = 4;
    m.addProcess(std::make_unique<CacheSpy>(sp), 1);

    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorCache(key, 0, 0);
    AuditDaemon daemon(m, auditor);
    daemon.enableOnlineAnalysis(OnlineAnalysisParams{});

    m.runQuanta(6);
    // Warm-up quantum aside, nearly every quantum holds several full
    // oscillation periods and alarms.
    EXPECT_GE(daemon.alarms().size(), 4u);
    EXPECT_LE(daemon.firstAlarmQuantum(0), 2u);
}

TEST(OnlineAnalysisTest, BenignPairNeverAlarms)
{
    Machine m(smallMachine());
    m.addProcess(makeBenchmark("gobmk", 3), 0);
    m.addProcess(makeBenchmark("sjeng", 4), 1);
    m.addProcess(makeBenchmark("mcf", 5));

    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorBus(key, 0);
    auditor.monitorDivider(key, 1, 0);
    AuditDaemon daemon(m, auditor);
    OnlineAnalysisParams params;
    params.clusteringIntervalQuanta = 2;
    daemon.enableOnlineAnalysis(params);

    m.runQuanta(8);
    EXPECT_TRUE(daemon.alarms().empty());
    EXPECT_EQ(daemon.firstAlarmQuantum(0), SIZE_MAX);
}

/** Alarm stream plus pipeline counters from one scenario run. */
struct ScenarioOutcome
{
    std::vector<Alarm> alarms;
    PipelineStats pipeline;
};

/** Run the divider trojan/spy scenario under the given online
 *  parameters and return the alarm stream and pipeline stats. */
ScenarioOutcome
runDividerOutcome(OnlineAnalysisParams params, std::size_t quanta = 8)
{
    Machine m(smallMachine());
    Rng rng(1);
    DividerTrojanParams tp;
    tp.timing = fastTiming();
    tp.message = Message::random64(rng);
    m.addProcess(std::make_unique<DividerTrojan>(tp), 0);
    DividerSpyParams sp;
    sp.timing = fastTiming();
    m.addProcess(std::make_unique<DividerSpy>(sp), 1);
    m.addProcess(makeBenchmark("mcf", 5));

    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorDivider(key, 0, 0);
    auditor.monitorBus(key, 1);
    AuditDaemon daemon(m, auditor);

    daemon.enableOnlineAnalysis(params);
    m.runQuanta(quanta);
    return ScenarioOutcome{daemon.alarms(), daemon.pipelineStats()};
}

/** Run the divider trojan/spy scenario and return the alarm stream. */
std::vector<Alarm>
runDividerScenario(std::size_t analysis_threads)
{
    OnlineAnalysisParams params;
    params.clusteringIntervalQuanta = 4;
    params.analysisThreads = analysis_threads;
    return runDividerOutcome(params).alarms;
}

void
expectSameAlarms(const std::vector<Alarm>& actual,
                 const std::vector<Alarm>& expected)
{
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(actual[i].slot, expected[i].slot);
        EXPECT_EQ(actual[i].when, expected[i].when);
        EXPECT_EQ(actual[i].quantum, expected[i].quantum);
        EXPECT_EQ(actual[i].summary, expected[i].summary);
    }
}

TEST(OnlineAnalysisTest, ParallelFanOutMatchesSerialAlarms)
{
    // The fan-out across monitored units must leave the alarm stream
    // bit-identical to the serial path: same alarms, same order.
    const auto serial = runDividerScenario(1);
    const auto parallel = runDividerScenario(4);
    ASSERT_FALSE(serial.empty());
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i].slot, serial[i].slot);
        EXPECT_EQ(parallel[i].when, serial[i].when);
        EXPECT_EQ(parallel[i].quantum, serial[i].quantum);
        EXPECT_EQ(parallel[i].summary, serial[i].summary);
    }
}

TEST(OnlineAnalysisTest, StreamingMatchesLegacyRecomputeAlarms)
{
    // The incrementally maintained merged histogram must be
    // indistinguishable from recomputing it off the retained window
    // each pass: identical alarms, identical summaries.
    OnlineAnalysisParams params;
    params.clusteringIntervalQuanta = 4;
    const auto streaming = runDividerOutcome(params);

    params.debugRecomputeMerged = true;
    const auto legacy = runDividerOutcome(params);

    ASSERT_FALSE(streaming.alarms.empty());
    expectSameAlarms(streaming.alarms, legacy.alarms);
}

TEST(OnlineAnalysisTest, AsyncBlockMatchesInlineAlarms)
{
    // With backpressure (no drops) the consumer-thread path must
    // produce the exact inline alarm stream.
    OnlineAnalysisParams params;
    params.clusteringIntervalQuanta = 4;
    const auto inline_run = runDividerOutcome(params);

    params.asyncAnalysis = true;
    params.queueCapacity = 2;
    params.queueOverflow = OverflowPolicy::Block;
    const auto async_run = runDividerOutcome(params);

    ASSERT_FALSE(inline_run.alarms.empty());
    expectSameAlarms(async_run.alarms, inline_run.alarms);
    // Contention-only slots batch once per clustering interval: 8
    // quanta at interval 4 is two hand-offs, none dropped.
    EXPECT_EQ(async_run.pipeline.batchesDropped, 0u);
    EXPECT_EQ(async_run.pipeline.batchesEnqueued, 2u);
    EXPECT_GE(async_run.pipeline.queueDepthHighWater, 1u);
}

TEST(OnlineAnalysisTest, AsyncAccountsForEveryBatch)
{
    // Whatever the overflow policy sheds, the books must balance:
    // every enqueued batch is either analysed or counted as dropped.
    OnlineAnalysisParams params;
    params.clusteringIntervalQuanta = 4;
    params.asyncAnalysis = true;
    params.queueCapacity = 1;
    params.queueOverflow = OverflowPolicy::DropOldest;
    const auto outcome = runDividerOutcome(params);

    EXPECT_EQ(outcome.pipeline.analysesRun +
                  outcome.pipeline.batchesDropped,
              outcome.pipeline.batchesEnqueued);
}

TEST(OnlineAnalysisTest, PipelineStatsCountDrains)
{
    OnlineAnalysisParams params;
    params.clusteringIntervalQuanta = 4;
    const auto outcome = runDividerOutcome(params);

    // Two contention slots drained over 8 quanta.
    EXPECT_EQ(outcome.pipeline.drainedHistograms, 16u);
    // Clustering fires after quanta 4 and 8: two analysis passes.
    EXPECT_EQ(outcome.pipeline.analysesRun, 2u);
    EXPECT_GT(outcome.pipeline.latencyMaxUs, 0.0);
    EXPECT_GE(outcome.pipeline.latencyMaxUs,
              outcome.pipeline.latencyMinUs);
    EXPECT_FALSE(outcome.pipeline.summary().empty());

    // The flat stat-entry view carries the same numbers under
    // prefixed names for the stats_report renderer.
    const auto entries = pipelineStatEntries(outcome.pipeline);
    bool found = false;
    for (const auto& e : entries) {
        if (e.name == "daemon.drained_histograms") {
            EXPECT_DOUBLE_EQ(e.value, 16.0);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(OnlineAnalysisTest, LongRunKeepsWindowsAndCostBounded)
{
    // Run 4x the retention window: the daemon must hold exactly
    // `retention` quanta per slot, count the rest as evicted, and the
    // incremental analysis must keep matching the recompute path at
    // every probe.
    DaemonRetention retention;
    retention.contentionQuanta = 8;
    constexpr std::size_t kQuanta = 32;

    Machine m(smallMachine());
    Rng rng(1);
    DividerTrojanParams tp;
    tp.timing = fastTiming();
    tp.message = Message::random64(rng);
    m.addProcess(std::make_unique<DividerTrojan>(tp), 0);
    DividerSpyParams sp;
    sp.timing = fastTiming();
    m.addProcess(std::make_unique<DividerSpy>(sp), 1);

    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorDivider(key, 0, 0);
    AuditDaemon daemon(m, auditor, retention);

    m.runQuanta(kQuanta);

    EXPECT_EQ(daemon.quantaRecorded(), kQuanta);
    EXPECT_EQ(daemon.contentionWindow(0).size(), 8u);
    EXPECT_EQ(daemon.evictedQuanta(0), kQuanta - 8);
    EXPECT_EQ(daemon.contentionQuanta(0).size(), 8u);

    // Incremental merged state equals a from-scratch recompute even
    // after 24 evict/unmerge cycles.
    const ContentionVerdict incremental = daemon.analyzeContention(0);
    daemon.setDebugRecomputeMerged(true);
    const ContentionVerdict recomputed = daemon.analyzeContention(0);
    EXPECT_EQ(incremental.summary(), recomputed.summary());
    EXPECT_EQ(incremental.detected, recomputed.detected);
    EXPECT_DOUBLE_EQ(incremental.combined.likelihoodRatio,
                     recomputed.combined.likelihoodRatio);
}

TEST(OnlineAnalysisTest, ConflictWindowStaysBounded)
{
    // Cache-channel conflict records flow at thousands per quantum; a
    // small retention must cap the ring and count the overflow.
    DaemonRetention retention;
    retention.conflictRecords = 64;

    MachineParams mp = smallMachine();
    mp.mem.l2 = CacheGeometry{256 * 1024, 1, 64};
    Machine m(mp);
    ChannelTiming timing;
    timing.start = 1000;
    timing.bandwidthBps = 1000.0;
    Rng rng(2);

    CacheChannelLayout layout;
    layout.l2NumSets = 4096;
    layout.channelSets = 256;

    CacheTrojanParams tp;
    tp.timing = timing;
    tp.message = Message::random64(rng);
    tp.layout = layout;
    tp.roundsPerBit = 4;
    m.addProcess(std::make_unique<CacheTrojan>(tp), 0);
    CacheSpyParams sp;
    sp.timing = timing;
    sp.layout = layout;
    sp.roundsPerBit = 4;
    m.addProcess(std::make_unique<CacheSpy>(sp), 1);

    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorCache(key, 0, 0);
    AuditDaemon daemon(m, auditor, retention);

    m.runQuanta(3);

    EXPECT_EQ(daemon.conflictWindow(0).size(), 64u);
    EXPECT_GT(daemon.evictedConflicts(0), 0u);
    EXPECT_EQ(daemon.conflictRecords(0).size(), 64u);
    EXPECT_EQ(daemon.labelSeries(0).size(), 64u);
    const PipelineStats stats = daemon.pipelineStats();
    EXPECT_EQ(stats.drainedConflicts,
              daemon.evictedConflicts(0) + 64u);
}

TEST(OnlineAnalysisTest, InvalidIntervalThrows)
{
    Machine m(smallMachine());
    CCAuditor auditor(m);
    AuditDaemon daemon(m, auditor);
    OnlineAnalysisParams params;
    params.clusteringIntervalQuanta = 0;
    EXPECT_ANY_THROW(daemon.enableOnlineAnalysis(params));
}

} // namespace
} // namespace cchunter
