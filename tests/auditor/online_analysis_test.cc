/**
 * @file
 * Online-analysis cadence tests: the daemon running the paper's live
 * schedule (clustering every N quanta, autocorrelation every quantum)
 * and raising alarms with bounded detection latency.
 */

#include <gtest/gtest.h>

#include <memory>

#include "auditor/cc_auditor.hh"
#include "auditor/daemon.hh"
#include "channels/cache_channel.hh"
#include "channels/divider_channel.hh"
#include "sim/machine.hh"
#include "workloads/suites.hh"

namespace cchunter
{
namespace
{

MachineParams
smallMachine()
{
    MachineParams p;
    p.scheduler.quantum = 2500000;
    return p;
}

ChannelTiming
fastTiming()
{
    ChannelTiming t;
    t.start = 1000;
    t.bandwidthBps = 10000.0;
    return t;
}

TEST(OnlineAnalysisTest, DividerChannelAlarmsAtFirstInterval)
{
    Machine m(smallMachine());
    Rng rng(1);
    DividerTrojanParams tp;
    tp.timing = fastTiming();
    tp.message = Message::random64(rng);
    m.addProcess(std::make_unique<DividerTrojan>(tp), 0);
    DividerSpyParams sp;
    sp.timing = fastTiming();
    m.addProcess(std::make_unique<DividerSpy>(sp), 1);

    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorDivider(key, 0, 0);
    AuditDaemon daemon(m, auditor);

    OnlineAnalysisParams params;
    params.clusteringIntervalQuanta = 4;
    int callbacks = 0;
    daemon.enableOnlineAnalysis(
        params, [&](const Alarm& a) { ++callbacks; });

    m.runQuanta(8);
    // Intervals complete after quanta 4 and 8: two alarms.
    ASSERT_GE(daemon.alarms().size(), 2u);
    EXPECT_EQ(callbacks, static_cast<int>(daemon.alarms().size()));
    EXPECT_EQ(daemon.firstAlarmQuantum(0), 3u); // quantum index 3
    EXPECT_NE(daemon.alarms()[0].summary.find("DETECTED"),
              std::string::npos);
}

TEST(OnlineAnalysisTest, CacheChannelAlarmsEveryQuantum)
{
    MachineParams mp = smallMachine();
    mp.mem.l2 = CacheGeometry{256 * 1024, 1, 64};
    Machine m(mp);
    ChannelTiming timing;
    timing.start = 1000;
    timing.bandwidthBps = 1000.0; // one bit per quantum
    Rng rng(2);

    CacheChannelLayout layout;
    layout.l2NumSets = 4096;
    layout.channelSets = 256;

    CacheTrojanParams tp;
    tp.timing = timing;
    tp.message = Message::random64(rng);
    tp.layout = layout;
    tp.roundsPerBit = 4;
    m.addProcess(std::make_unique<CacheTrojan>(tp), 0);
    CacheSpyParams sp;
    sp.timing = timing;
    sp.layout = layout;
    sp.roundsPerBit = 4;
    m.addProcess(std::make_unique<CacheSpy>(sp), 1);

    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorCache(key, 0, 0);
    AuditDaemon daemon(m, auditor);
    daemon.enableOnlineAnalysis(OnlineAnalysisParams{});

    m.runQuanta(6);
    // Warm-up quantum aside, nearly every quantum holds several full
    // oscillation periods and alarms.
    EXPECT_GE(daemon.alarms().size(), 4u);
    EXPECT_LE(daemon.firstAlarmQuantum(0), 2u);
}

TEST(OnlineAnalysisTest, BenignPairNeverAlarms)
{
    Machine m(smallMachine());
    m.addProcess(makeBenchmark("gobmk", 3), 0);
    m.addProcess(makeBenchmark("sjeng", 4), 1);
    m.addProcess(makeBenchmark("mcf", 5));

    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorBus(key, 0);
    auditor.monitorDivider(key, 1, 0);
    AuditDaemon daemon(m, auditor);
    OnlineAnalysisParams params;
    params.clusteringIntervalQuanta = 2;
    daemon.enableOnlineAnalysis(params);

    m.runQuanta(8);
    EXPECT_TRUE(daemon.alarms().empty());
    EXPECT_EQ(daemon.firstAlarmQuantum(0), SIZE_MAX);
}

/** Run the divider trojan/spy scenario and return the alarm stream. */
std::vector<Alarm>
runDividerScenario(std::size_t analysis_threads)
{
    Machine m(smallMachine());
    Rng rng(1);
    DividerTrojanParams tp;
    tp.timing = fastTiming();
    tp.message = Message::random64(rng);
    m.addProcess(std::make_unique<DividerTrojan>(tp), 0);
    DividerSpyParams sp;
    sp.timing = fastTiming();
    m.addProcess(std::make_unique<DividerSpy>(sp), 1);
    m.addProcess(makeBenchmark("mcf", 5));

    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorDivider(key, 0, 0);
    auditor.monitorBus(key, 1);
    AuditDaemon daemon(m, auditor);

    OnlineAnalysisParams params;
    params.clusteringIntervalQuanta = 4;
    params.analysisThreads = analysis_threads;
    daemon.enableOnlineAnalysis(params);
    m.runQuanta(8);
    return daemon.alarms();
}

TEST(OnlineAnalysisTest, ParallelFanOutMatchesSerialAlarms)
{
    // The fan-out across monitored units must leave the alarm stream
    // bit-identical to the serial path: same alarms, same order.
    const auto serial = runDividerScenario(1);
    const auto parallel = runDividerScenario(4);
    ASSERT_FALSE(serial.empty());
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i].slot, serial[i].slot);
        EXPECT_EQ(parallel[i].when, serial[i].when);
        EXPECT_EQ(parallel[i].quantum, serial[i].quantum);
        EXPECT_EQ(parallel[i].summary, serial[i].summary);
    }
}

TEST(OnlineAnalysisTest, InvalidIntervalThrows)
{
    Machine m(smallMachine());
    CCAuditor auditor(m);
    AuditDaemon daemon(m, auditor);
    OnlineAnalysisParams params;
    params.clusteringIntervalQuanta = 0;
    EXPECT_ANY_THROW(daemon.enableOnlineAnalysis(params));
}

} // namespace
} // namespace cchunter
