#include <gtest/gtest.h>

#include <vector>

#include "auditor/vector_register.hh"

namespace cchunter
{
namespace
{

TEST(VectorRegisterTest, EntriesPerRegisterSizing)
{
    VectorRegisterParams p;
    // 128 bytes = 1024 bits; 6 bits per event -> 170 entries.
    EXPECT_EQ(p.entriesPerRegister(), 170u);
}

TEST(VectorRegisterTest, DrainFiresWhenRegisterFills)
{
    ConflictVectorRegisters vr;
    std::vector<std::size_t> drain_sizes;
    vr.setDrainCallback(
        [&](const std::vector<ConflictMissEvent>& evs) {
            drain_sizes.push_back(evs.size());
        });
    const std::size_t cap = vr.params().entriesPerRegister();
    for (std::size_t i = 0; i < cap; ++i)
        vr.record(ConflictMissEvent{i, 0, 1});
    ASSERT_EQ(drain_sizes.size(), 1u);
    EXPECT_EQ(drain_sizes[0], cap);
    EXPECT_EQ(vr.activeCount(), 0u);
}

TEST(VectorRegisterTest, AlternatesRegisters)
{
    ConflictVectorRegisters vr;
    vr.setDrainCallback([](const std::vector<ConflictMissEvent>&) {});
    const std::size_t cap = vr.params().entriesPerRegister();
    EXPECT_EQ(vr.activeRegister(), 0u);
    for (std::size_t i = 0; i < cap; ++i)
        vr.record(ConflictMissEvent{i, 0, 1});
    EXPECT_EQ(vr.activeRegister(), 1u);
    for (std::size_t i = 0; i < cap; ++i)
        vr.record(ConflictMissEvent{i, 0, 1});
    EXPECT_EQ(vr.activeRegister(), 0u);
    EXPECT_EQ(vr.drains(), 2u);
}

TEST(VectorRegisterTest, FlushDrainsPartial)
{
    ConflictVectorRegisters vr;
    std::vector<ConflictMissEvent> all;
    vr.setDrainCallback(
        [&](const std::vector<ConflictMissEvent>& evs) {
            all.insert(all.end(), evs.begin(), evs.end());
        });
    vr.record(ConflictMissEvent{1, 2, 3});
    vr.record(ConflictMissEvent{2, 3, 2});
    vr.flush();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].time, 1u);
    EXPECT_EQ(all[1].replacer, 3);
    EXPECT_EQ(vr.activeCount(), 0u);
}

TEST(VectorRegisterTest, FlushOnEmptyIsNoOp)
{
    ConflictVectorRegisters vr;
    int drains = 0;
    vr.setDrainCallback(
        [&](const std::vector<ConflictMissEvent>&) { ++drains; });
    vr.flush();
    EXPECT_EQ(drains, 0);
}

TEST(VectorRegisterTest, EventsPreservedInOrder)
{
    ConflictVectorRegisters vr;
    std::vector<Tick> times;
    vr.setDrainCallback(
        [&](const std::vector<ConflictMissEvent>& evs) {
            for (const auto& e : evs)
                times.push_back(e.time);
        });
    for (Tick t = 0; t < 500; ++t)
        vr.record(ConflictMissEvent{t, 0, 1});
    vr.flush();
    ASSERT_EQ(times.size(), 500u);
    for (Tick t = 0; t < 500; ++t)
        EXPECT_EQ(times[t], t);
}

TEST(VectorRegisterTest, TotalRecordedCounts)
{
    ConflictVectorRegisters vr;
    vr.setDrainCallback([](const std::vector<ConflictMissEvent>&) {});
    for (int i = 0; i < 300; ++i)
        vr.record(ConflictMissEvent{0, 0, 1});
    EXPECT_EQ(vr.totalRecorded(), 300u);
}

TEST(VectorRegisterTest, InvalidParamsThrow)
{
    VectorRegisterParams p;
    p.bitsPerContext = 0;
    EXPECT_ANY_THROW(ConflictVectorRegisters{p});
    VectorRegisterParams q;
    q.bytesPerRegister = 0;
    EXPECT_ANY_THROW(ConflictVectorRegisters{q});
}

} // namespace
} // namespace cchunter
