#include <gtest/gtest.h>

#include <memory>

#include "auditor/cc_auditor.hh"
#include "auditor/daemon.hh"
#include "sim/machine.hh"

namespace cchunter
{
namespace
{

/** Minimal workload issuing locked accesses at a fixed period. */
class LockerWorkload : public Workload
{
  public:
    explicit LockerWorkload(Cycles period) : period_(period) {}

    Action
    nextAction(const ExecView& view) override
    {
        if (flip_) {
            flip_ = false;
            return Action::compute(period_);
        }
        flip_ = true;
        return Action::lockedAccess(0x1000);
    }

    std::string name() const override { return "locker"; }

  private:
    Cycles period_;
    bool flip_ = false;
};

/** Endless divider user. */
class DividerWorkload : public Workload
{
  public:
    Action
    nextAction(const ExecView&) override
    {
        return Action::divideBatch(20);
    }

    std::string name() const override { return "div"; }
};

MachineParams
smallMachine()
{
    MachineParams p;
    p.mem.l1 = CacheGeometry{1024, 2, 64};
    p.mem.l2 = CacheGeometry{4096, 2, 64};
    p.scheduler.quantum = 1000000;
    return p;
}

TEST(AuditKeyTest, AdminGetsValidKey)
{
    const AuditKey key = requestAuditKey(true);
    EXPECT_TRUE(key.valid());
}

TEST(AuditKeyTest, NonAdminDenied)
{
    EXPECT_ANY_THROW(requestAuditKey(false));
}

TEST(CCAuditorTest, InvalidKeyRejected)
{
    Machine m(smallMachine());
    CCAuditor auditor(m);
    AuditKey invalid;
    EXPECT_ANY_THROW(auditor.monitorBus(invalid, 0));
}

TEST(CCAuditorTest, AtMostTwoSlots)
{
    Machine m(smallMachine());
    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    EXPECT_NO_THROW(auditor.monitorBus(key, 0));
    EXPECT_NO_THROW(auditor.monitorDivider(key, 1, 0));
    EXPECT_ANY_THROW(auditor.monitorCache(key, 2, 0));
}

TEST(CCAuditorTest, SlotStateReflectsProgramming)
{
    Machine m(smallMachine());
    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    EXPECT_FALSE(auditor.slotActive(0));
    auditor.monitorBus(key, 0);
    EXPECT_TRUE(auditor.slotActive(0));
    EXPECT_EQ(auditor.slotTarget(0), MonitorTarget::MemoryBus);
    EXPECT_NE(auditor.histogramBuffer(0), nullptr);
    EXPECT_EQ(auditor.vectorRegisters(0), nullptr);

    auditor.monitorCache(key, 0, 0); // reprogram
    EXPECT_EQ(auditor.slotTarget(0), MonitorTarget::L2Cache);
    EXPECT_EQ(auditor.histogramBuffer(0), nullptr);
    EXPECT_NE(auditor.vectorRegisters(0), nullptr);
    EXPECT_NE(auditor.tracker(0), nullptr);

    auditor.stopMonitor(key, 0);
    EXPECT_FALSE(auditor.slotActive(0));
}

TEST(CCAuditorTest, BusMonitorCountsLocks)
{
    Machine m(smallMachine());
    m.addProcess(std::make_unique<LockerWorkload>(10000), 0);
    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorBus(key, 0, /*delta_t=*/100000);
    m.run(1000000);
    EXPECT_GT(auditor.histogramBuffer(0)->totalEvents(), 10u);
}

TEST(CCAuditorTest, DividerMonitorSeesConflicts)
{
    Machine m(smallMachine());
    m.addProcess(std::make_unique<DividerWorkload>(), 0);
    m.addProcess(std::make_unique<DividerWorkload>(), 1);
    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorDivider(key, 0, 0, 500);
    m.run(100000);
    EXPECT_GT(auditor.histogramBuffer(0)->totalEvents(), 100u);
}

TEST(CCAuditorTest, StoppedMonitorStopsCounting)
{
    Machine m(smallMachine());
    m.addProcess(std::make_unique<LockerWorkload>(10000), 0);
    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorBus(key, 0);
    m.run(500000);
    auditor.stopMonitor(key, 0);
    EXPECT_FALSE(auditor.slotActive(0));
    // No crash as the machine continues with the listener disarmed.
    EXPECT_NO_THROW(m.run(500000));
}

TEST(CCAuditorTest, BadCoreRejected)
{
    Machine m(smallMachine());
    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    EXPECT_ANY_THROW(auditor.monitorDivider(key, 0, 99));
    EXPECT_ANY_THROW(auditor.monitorCache(key, 0, 99));
}

TEST(AuditDaemonTest, RecordsQuantaHistograms)
{
    Machine m(smallMachine());
    m.addProcess(std::make_unique<LockerWorkload>(10000), 0);
    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorBus(key, 0, 100000);
    AuditDaemon daemon(m, auditor);
    m.runQuanta(4);
    EXPECT_EQ(daemon.quantaRecorded(), 4u);
    ASSERT_EQ(daemon.contentionQuanta(0).size(), 4u);
    for (const auto& h : daemon.contentionQuanta(0))
        EXPECT_EQ(h.totalSamples(), 10u); // 1M / 100k windows
}

TEST(AuditDaemonTest, CacheSlotYieldsLabelSeries)
{
    MachineParams mp = smallMachine();
    mp.mem.l2 = CacheGeometry{4096, 1, 64}; // direct-mapped: 64 sets
    Machine m(mp);

    // Two processes ping-ponging the same set ranges.
    class PingPong : public Workload
    {
      public:
        PingPong(Addr base, std::string name)
            : base_(base), name_(std::move(name))
        {
        }

        Action
        nextAction(const ExecView&) override
        {
            const Addr a = base_ + (i_ % 32) * 64;
            ++i_;
            return Action::read(a);
        }

        std::string name() const override { return name_; }

      private:
        Addr base_;
        std::string name_;
        std::uint64_t i_ = 0;
    };

    m.addProcess(std::make_unique<PingPong>(0x000000, "p0"), 0);
    m.addProcess(std::make_unique<PingPong>(0x100000, "p1"), 1);

    CCAuditor auditor(m);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorCache(key, 0, 0);
    AuditDaemon daemon(m, auditor);
    m.runQuanta(2);

    const auto& records = daemon.conflictRecords(0);
    ASSERT_GT(records.size(), 100u);
    // Pids resolved for (almost) all records; the rare exceptions are
    // bloom false positives firing on fills into invalid ways.
    std::size_t resolved = 0;
    for (const auto& r : records) {
        EXPECT_NE(r.replacerPid, invalidProcess);
        resolved += r.victimPid != invalidProcess;
    }
    EXPECT_GT(static_cast<double>(resolved) /
                  static_cast<double>(records.size()),
              0.9);
    const auto labels = daemon.labelSeries(0);
    EXPECT_EQ(labels.size(), records.size());
    for (double l : labels)
        EXPECT_TRUE(l == 0.0 || l == 1.0);
}

TEST(AuditDaemonTest, BadSlotThrows)
{
    Machine m(smallMachine());
    CCAuditor auditor(m);
    AuditDaemon daemon(m, auditor);
    EXPECT_ANY_THROW(daemon.contentionQuanta(5));
    EXPECT_ANY_THROW(daemon.conflictRecords(5));
}

} // namespace
} // namespace cchunter
