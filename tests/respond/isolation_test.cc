/**
 * @file
 * Scheduler isolation hooks + mitigation engage/release pairs: the
 * actuator layer the response ladder drives.  Every transition is
 * counted (IsolationStats / MitigationLedger), releases restore the
 * pre-engagement state, and a machine that never engages isolation
 * schedules bit-identically to one without the hooks.
 */

#include <gtest/gtest.h>

#include <memory>

#include "channels/divider_channel.hh"
#include "mitigate/mitigator.hh"
#include "mitigate/response_plan.hh"

namespace cchunter
{
namespace
{

MachineParams
smallMachine()
{
    MachineParams p;
    p.scheduler.quantum = 2500000;
    return p;
}

/** Adds a divider trojan/spy pair on contexts 0/1; returns the spy. */
Process&
addDividerPair(Machine& machine)
{
    ChannelTiming timing;
    timing.start = 1000;
    timing.bandwidthBps = 10000.0;
    Rng rng(1);
    DividerTrojanParams tp;
    tp.timing = timing;
    tp.message = Message::random64(rng);
    machine.addProcess(std::make_unique<DividerTrojan>(tp), 0);
    DividerSpyParams sp;
    sp.timing = timing;
    return machine.addProcess(std::make_unique<DividerSpy>(sp), 1);
}

TEST(SchedulerIsolationTest, PartitionAlternatesTheTwoContexts)
{
    Machine machine(smallMachine());
    Scheduler& sched = machine.scheduler();
    EXPECT_FALSE(sched.isolationActive());

    ASSERT_TRUE(sched.partitionContexts(0, 1));
    EXPECT_TRUE(sched.isolationActive());
    // `a` owns even quanta, `b` odd ones — never co-scheduled.
    for (std::uint64_t q = 0; q < 6; ++q) {
        EXPECT_EQ(sched.contextSuppressed(0, q), q % 2 == 1) << q;
        EXPECT_EQ(sched.contextSuppressed(1, q), q % 2 == 0) << q;
        EXPECT_FALSE(sched.contextSuppressed(2, q)) << q;
    }

    // Re-engaging the same pair (either order) is a counted no-op.
    EXPECT_FALSE(sched.partitionContexts(1, 0));
    EXPECT_EQ(sched.isolation().partitionsEngaged, 1u);
    EXPECT_TRUE(sched.releasePartition(1, 0));
    EXPECT_FALSE(sched.releasePartition(0, 1));
    EXPECT_FALSE(sched.isolationActive());
    EXPECT_EQ(sched.isolation().partitionsReleased, 1u);
}

TEST(SchedulerIsolationTest, ThrottleEnforcesTheDutyCycle)
{
    Machine machine(smallMachine());
    Scheduler& sched = machine.scheduler();
    ASSERT_TRUE(sched.throttleContext(1, 4, 1));
    for (std::uint64_t q = 0; q < 8; ++q)
        EXPECT_EQ(sched.contextSuppressed(1, q), q % 4 >= 1) << q;

    // Re-engaging updates the duty cycle without a new transition.
    EXPECT_FALSE(sched.throttleContext(1, 4, 3));
    EXPECT_EQ(sched.isolation().throttlesEngaged, 1u);
    for (std::uint64_t q = 0; q < 8; ++q)
        EXPECT_EQ(sched.contextSuppressed(1, q), q % 4 >= 3) << q;

    EXPECT_TRUE(sched.releaseThrottle(1));
    EXPECT_FALSE(sched.releaseThrottle(1));
    EXPECT_EQ(sched.isolation().throttlesReleased, 1u);
}

TEST(SchedulerIsolationTest, QuarantineSuppressesEveryQuantum)
{
    Machine machine(smallMachine());
    Scheduler& sched = machine.scheduler();
    ASSERT_TRUE(sched.quarantineContext(0));
    EXPECT_FALSE(sched.quarantineContext(0));
    for (std::uint64_t q = 0; q < 4; ++q)
        EXPECT_TRUE(sched.contextSuppressed(0, q));
    EXPECT_EQ(sched.activeQuarantines(), 1u);
    EXPECT_TRUE(sched.releaseQuarantine(0));
    EXPECT_EQ(sched.isolation().quarantinesEngaged, 1u);
    EXPECT_EQ(sched.isolation().quarantinesReleased, 1u);
}

TEST(SchedulerIsolationTest, QuarantineStopsAPinnedChannelPair)
{
    Machine machine(smallMachine());
    addDividerPair(machine);
    machine.runQuanta(2);
    const auto before = machine.divider(0).totalConflicts();
    EXPECT_GT(before, 0u);

    Scheduler& sched = machine.scheduler();
    ASSERT_TRUE(sched.quarantineContext(0));
    ASSERT_TRUE(sched.quarantineContext(1));
    machine.runQuanta(1); // boundary applies the suppression
    const auto at_switch = machine.divider(0).totalConflicts();
    machine.runQuanta(3);
    EXPECT_EQ(machine.divider(0).totalConflicts(), at_switch);
    EXPECT_GT(sched.isolation().suppressedQuanta, 0u);
}

TEST(ResponsePlanTest, ConfigRoundTrip)
{
    ResponsePlan plan;
    plan.level = ResponseLevel::TemporalPartition;
    plan.busLockInterval = 42000;
    plan.throttlePeriod = 8;
    plan.throttleActive = 2;

    const ResponsePlan back = ResponsePlan::fromConfig(plan.toConfig());
    EXPECT_EQ(back.level, plan.level);
    EXPECT_EQ(back.busLockInterval, plan.busLockInterval);
    EXPECT_EQ(back.throttlePeriod, plan.throttlePeriod);
    EXPECT_EQ(back.throttleActive, plan.throttleActive);
    EXPECT_TRUE(back.active());
    EXPECT_FALSE(ResponsePlan{}.active());
}

TEST(ResponsePlanTest, LevelNamesRoundTrip)
{
    for (const ResponseLevel level :
         {ResponseLevel::Observe, ResponseLevel::RateLimit,
          ResponseLevel::TemporalPartition,
          ResponseLevel::Quarantine})
        EXPECT_EQ(responseLevelFromName(responseLevelName(level)),
                  level);
    EXPECT_EQ(escalated(ResponseLevel::Quarantine),
              ResponseLevel::Quarantine);
    EXPECT_EQ(deescalated(ResponseLevel::Observe),
              ResponseLevel::Observe);
    EXPECT_EQ(escalated(ResponseLevel::Observe),
              ResponseLevel::RateLimit);
    EXPECT_EQ(deescalated(ResponseLevel::Quarantine),
              ResponseLevel::TemporalPartition);
}

TEST(ResponsePlanTest, BusRateLimitPlanDrivesTheBus)
{
    Machine machine(smallMachine());
    ResponsePlan plan;
    plan.level = ResponseLevel::RateLimit;
    plan.busLockInterval = 77000;
    ASSERT_TRUE(applyResponsePlan(machine, MonitorTarget::MemoryBus,
                                  plan));
    EXPECT_EQ(machine.mem().bus().lockRateLimit(), 77000u);
    ASSERT_TRUE(releaseResponsePlan(machine, MonitorTarget::MemoryBus,
                                    plan));
    EXPECT_EQ(machine.mem().bus().lockRateLimit(), 0u);
}

TEST(ResponsePlanTest, QuarantinePlanEngagesAndReleasesBothContexts)
{
    Machine machine(smallMachine());
    ResponsePlan plan;
    plan.level = ResponseLevel::Quarantine;
    const std::array<ContextId, 2> pair = {0, 1};
    ASSERT_TRUE(applyResponsePlan(machine, pair, plan));
    EXPECT_EQ(machine.scheduler().activeQuarantines(), 2u);
    ASSERT_TRUE(releaseResponsePlan(machine, pair, plan));
    EXPECT_FALSE(machine.scheduler().isolationActive());
    EXPECT_EQ(machine.scheduler().isolation().quarantinesEngaged, 2u);
    EXPECT_EQ(machine.scheduler().isolation().quarantinesReleased, 2u);
}

TEST(MitigatorLedgerTest, UnshareEngageReleaseRestoresThePin)
{
    Machine machine(smallMachine());
    Process& spy = addDividerPair(machine);

    CCAuditor auditor(machine);
    AuditDaemon daemon(machine, auditor);
    Mitigator mitigator(machine, daemon);

    const MitigationReport engage = mitigator.unshare(spy.pid());
    ASSERT_TRUE(engage.applied);
    EXPECT_EQ(mitigator.ledger().unshares, 1u);
    EXPECT_EQ(mitigator.ledger().engaged(), 1u);

    const MitigationReport release =
        mitigator.releaseUnshare(spy.pid());
    ASSERT_TRUE(release.applied);
    EXPECT_EQ(mitigator.ledger().unshareReleases, 1u);
    EXPECT_EQ(mitigator.ledger().released(), 1u);
    // The pin is back where it started.
    EXPECT_EQ(release.newContext, 1);

    // Releasing twice is safe and not applied.
    EXPECT_FALSE(mitigator.releaseUnshare(spy.pid()).applied);
}

TEST(MitigatorLedgerTest, BusRateLimitEngageReleasePair)
{
    Machine machine(smallMachine());
    CCAuditor auditor(machine);
    AuditDaemon daemon(machine, auditor);
    Mitigator mitigator(machine, daemon);

    ASSERT_TRUE(mitigator.rateLimitBusLocks(123456).applied);
    EXPECT_EQ(machine.mem().bus().lockRateLimit(), 123456u);
    EXPECT_EQ(mitigator.ledger().rateLimits, 1u);

    ASSERT_TRUE(mitigator.releaseBusLockRateLimit().applied);
    EXPECT_EQ(machine.mem().bus().lockRateLimit(), 0u);
    EXPECT_EQ(mitigator.ledger().rateLimitReleases, 1u);
}

} // namespace
} // namespace cchunter
