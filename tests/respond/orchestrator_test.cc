/**
 * @file
 * Response orchestrator tests: the escalation ladder's hysteresis
 * (escalate counters, TTL cool-down), the critical fast path, the
 * per-unit caps, the action rate limits, byte-stable action-log
 * rendering, and the persisted-state round trip (both through
 * ResponseOrchestrator::restored and the snapshot codec).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "persist/fleet_snapshot.hh"
#include "respond/orchestrator.hh"

namespace cchunter
{
namespace
{

Incident
makeIncident(TenantId tenant, MonitorTarget unit,
             IncidentSeverity severity = IncidentSeverity::Warning,
             std::uint64_t id = 1)
{
    Incident incident;
    incident.id = id;
    incident.tenant = tenant;
    incident.unit = unit;
    incident.severity = severity;
    return incident;
}

Incident
fleetWideIncident(MonitorTarget unit, std::vector<TenantId> tenants)
{
    Incident incident;
    incident.id = 7;
    incident.fleetWide = true;
    incident.unit = unit;
    incident.severity = IncidentSeverity::Warning;
    incident.correlatedTenants = std::move(tenants);
    return incident;
}

TEST(ResponseOrchestratorTest, EscalatesOneRungPerThreshold)
{
    ResponsePolicy policy;
    policy.criticalFastPath = false;
    policy.deescalateAfterQuietEpochs = 0; // no cool-down here
    ResponseOrchestrator orch(policy);

    const auto round = [&](std::size_t count) {
        std::vector<Incident> incidents(
            count, makeIncident(3, MonitorTarget::IntegerDivider));
        orch.observeIncidents(incidents);
    };

    // Default escalateAfterIncidents = 2: one incident is not enough.
    round(1);
    EXPECT_EQ(orch.levelFor(3, MonitorTarget::IntegerDivider),
              ResponseLevel::Observe);
    EXPECT_TRUE(orch.actions().empty());

    // The second trips the counter; each further pair climbs a rung.
    round(1);
    EXPECT_EQ(orch.levelFor(3, MonitorTarget::IntegerDivider),
              ResponseLevel::RateLimit);
    round(2);
    EXPECT_EQ(orch.levelFor(3, MonitorTarget::IntegerDivider),
              ResponseLevel::TemporalPartition);
    round(2);
    EXPECT_EQ(orch.levelFor(3, MonitorTarget::IntegerDivider),
              ResponseLevel::Quarantine);

    // Quarantine saturates: more pressure adds no action.
    const std::size_t actions = orch.actions().size();
    round(4);
    EXPECT_EQ(orch.levelFor(3, MonitorTarget::IntegerDivider),
              ResponseLevel::Quarantine);
    EXPECT_EQ(orch.actions().size(), actions);

    ASSERT_EQ(actions, 3u);
    EXPECT_EQ(orch.actions()[0].kind, ResponseActionKind::Engage);
    EXPECT_EQ(orch.actions()[1].kind, ResponseActionKind::Escalate);
    EXPECT_EQ(orch.actions()[2].kind, ResponseActionKind::Escalate);
}

TEST(ResponseOrchestratorTest, CriticalFastPathJumpsToPartition)
{
    ResponseOrchestrator orch;
    orch.observeIncidents({makeIncident(1, MonitorTarget::L2Cache,
                                        IncidentSeverity::Critical)});
    EXPECT_EQ(orch.levelFor(1, MonitorTarget::L2Cache),
              ResponseLevel::TemporalPartition);
    ASSERT_EQ(orch.actions().size(), 1u);
    EXPECT_EQ(orch.actions().front().kind, ResponseActionKind::Engage);
    EXPECT_EQ(orch.actions().front().to,
              ResponseLevel::TemporalPartition);
}

TEST(ResponseOrchestratorTest, PerUnitPolicyCapsTheLadder)
{
    ResponsePolicy policy;
    policy.deescalateAfterQuietEpochs = 0;
    UnitResponsePolicy capped;
    capped.maxLevel = ResponseLevel::RateLimit;
    capped.escalateAfterIncidents = 1;
    policy.perUnit.push_back({MonitorTarget::MemoryBus, capped});
    ResponseOrchestrator orch(policy);

    for (int i = 0; i < 5; ++i)
        orch.observeIncidents({makeIncident(
            2, MonitorTarget::MemoryBus, IncidentSeverity::Critical)});
    // Even the critical fast path cannot climb past the unit's cap.
    EXPECT_EQ(orch.levelFor(2, MonitorTarget::MemoryBus),
              ResponseLevel::RateLimit);
    EXPECT_EQ(orch.actions().size(), 1u);
}

TEST(ResponseOrchestratorTest, TtlDeescalationUnwindsOneRungPerQuietTtl)
{
    ResponsePolicy policy;
    policy.deescalateAfterQuietEpochs = 2;
    UnitResponsePolicy fast;
    fast.escalateAfterIncidents = 1;
    policy.defaults = fast;
    ResponseOrchestrator orch(policy);

    // Three pressured epochs climb straight to quarantine.
    for (int i = 0; i < 3; ++i)
        orch.observeIncidents(
            {makeIncident(5, MonitorTarget::IntegerDivider)});
    ASSERT_EQ(orch.levelFor(5, MonitorTarget::IntegerDivider),
              ResponseLevel::Quarantine);

    // Quiet epochs: one rung per TTL interval, never all at once.
    orch.observeIncidents({});
    EXPECT_EQ(orch.levelFor(5, MonitorTarget::IntegerDivider),
              ResponseLevel::Quarantine);
    orch.observeIncidents({});
    EXPECT_EQ(orch.levelFor(5, MonitorTarget::IntegerDivider),
              ResponseLevel::TemporalPartition);
    orch.observeIncidents({});
    EXPECT_EQ(orch.levelFor(5, MonitorTarget::IntegerDivider),
              ResponseLevel::TemporalPartition);
    orch.observeIncidents({});
    EXPECT_EQ(orch.levelFor(5, MonitorTarget::IntegerDivider),
              ResponseLevel::RateLimit);
    orch.observeIncidents({});
    orch.observeIncidents({});
    EXPECT_EQ(orch.levelFor(5, MonitorTarget::IntegerDivider),
              ResponseLevel::Observe);

    // The unwind is recorded: 2 de-escalations + the final release.
    const auto& actions = orch.actions();
    ASSERT_EQ(actions.size(), 6u);
    EXPECT_EQ(actions[3].kind, ResponseActionKind::Deescalate);
    EXPECT_TRUE(actions[3].ttl);
    EXPECT_EQ(actions[5].kind, ResponseActionKind::Release);
}

TEST(ResponseOrchestratorTest, RateCapsSuppressWithoutMovingState)
{
    ResponsePolicy policy;
    policy.maxTotalActions = 1;
    UnitResponsePolicy fast;
    fast.escalateAfterIncidents = 1;
    policy.defaults = fast;
    ResponseOrchestrator orch(policy);

    orch.observeIncidents(
        {makeIncident(1, MonitorTarget::IntegerDivider)});
    EXPECT_EQ(orch.actions().size(), 1u);
    EXPECT_EQ(orch.suppressed(), 0u);

    // Further pressure is counted but the ladder does not move —
    // mirroring IncidentStore suppression semantics.
    orch.observeIncidents(
        {makeIncident(1, MonitorTarget::IntegerDivider)});
    EXPECT_EQ(orch.actions().size(), 1u);
    EXPECT_GE(orch.suppressed(), 1u);
    EXPECT_EQ(orch.levelFor(1, MonitorTarget::IntegerDivider),
              ResponseLevel::RateLimit);
}

TEST(ResponseOrchestratorTest, PerTenantCapIsIndependent)
{
    ResponsePolicy policy;
    policy.maxActionsPerTenant = 1;
    policy.deescalateAfterQuietEpochs = 0;
    UnitResponsePolicy fast;
    fast.escalateAfterIncidents = 1;
    policy.defaults = fast;
    ResponseOrchestrator orch(policy);

    for (int i = 0; i < 3; ++i)
        orch.observeIncidents(
            {makeIncident(1, MonitorTarget::IntegerDivider),
             makeIncident(2, MonitorTarget::IntegerDivider)});
    // Each tenant got exactly its one admitted action.
    EXPECT_EQ(orch.actions().size(), 2u);
    EXPECT_EQ(orch.levelFor(1, MonitorTarget::IntegerDivider),
              ResponseLevel::RateLimit);
    EXPECT_EQ(orch.levelFor(2, MonitorTarget::IntegerDivider),
              ResponseLevel::RateLimit);
    EXPECT_GE(orch.suppressed(), 2u);
}

TEST(ResponseOrchestratorTest, FleetWidePressuresEveryCorrelatedTenant)
{
    ResponsePolicy policy;
    UnitResponsePolicy fast;
    fast.escalateAfterIncidents = 1;
    policy.defaults = fast;
    ResponseOrchestrator orch(policy);

    orch.observeIncidents(
        {fleetWideIncident(MonitorTarget::L2Cache, {2, 4, 6})});
    EXPECT_EQ(orch.actions().size(), 3u);
    for (const TenantId tenant : {2u, 4u, 6u})
        EXPECT_EQ(orch.levelFor(tenant, MonitorTarget::L2Cache),
                  ResponseLevel::RateLimit)
            << "tenant=" << tenant;
    EXPECT_EQ(orch.engagedPairs().size(), 3u);
}

TEST(ResponseOrchestratorTest, ActionLogIsByteStable)
{
    const auto run = [] {
        ResponsePolicy policy;
        UnitResponsePolicy fast;
        fast.escalateAfterIncidents = 1;
        policy.defaults = fast;
        ResponseOrchestrator orch(policy);
        orch.observeIncidents(
            {makeIncident(3, MonitorTarget::IntegerDivider,
                          IncidentSeverity::Warning, 11)});
        orch.observeIncidents({});
        orch.observeIncidents({});
        return orch;
    };
    const ResponseOrchestrator a = run();
    const ResponseOrchestrator b = run();
    EXPECT_EQ(a.streamText(), b.streamText());
    EXPECT_EQ(a.streamHash(), b.streamHash());
    EXPECT_NE(a.streamHash(), 0u);

    // The rendering is the contract: pin one line's exact shape.
    ASSERT_FALSE(a.actions().empty());
    EXPECT_EQ(a.actions().front().actionLine(),
              "action 0 epoch=1 tenant=3 unit=divider engage "
              "observe->rate-limit trigger=incident:11");
}

TEST(ResponseOrchestratorTest, RestoredOrchestratorContinuesExactly)
{
    ResponsePolicy policy;
    UnitResponsePolicy fast;
    fast.escalateAfterIncidents = 1;
    policy.defaults = fast;

    ResponseOrchestrator live(policy);
    live.observeIncidents(
        {makeIncident(4, MonitorTarget::L2Cache)});

    ResponseOrchestrator restored = ResponseOrchestrator::restored(
        policy, live.snapshotState());
    EXPECT_EQ(restored.streamText(), live.streamText());
    EXPECT_EQ(restored.levelFor(4, MonitorTarget::L2Cache),
              ResponseLevel::RateLimit);

    // Both sides observe the same next round: byte-identical logs.
    const std::vector<Incident> next = {
        makeIncident(4, MonitorTarget::L2Cache,
                     IncidentSeverity::Warning, 9)};
    live.observeIncidents(next);
    restored.observeIncidents(next);
    EXPECT_EQ(restored.streamText(), live.streamText());
    EXPECT_EQ(restored.streamHash(), live.streamHash());
}

TEST(ResponseOrchestratorTest, ResponseStateCodecRoundTrips)
{
    ResponsePolicy policy;
    UnitResponsePolicy fast;
    fast.escalateAfterIncidents = 1;
    policy.defaults = fast;
    ResponseOrchestrator orch(policy);
    orch.observeIncidents(
        {makeIncident(1, MonitorTarget::IntegerDivider),
         makeIncident(2, MonitorTarget::MemoryBus,
                      IncidentSeverity::Critical)});
    orch.observeIncidents({});

    const ResponseOrchestratorState state = orch.snapshotState();
    const std::vector<std::uint8_t> bytes =
        persist::encodeResponseState(state);
    ResponseOrchestratorState back;
    ASSERT_TRUE(persist::decodeResponseState(bytes, back));
    EXPECT_EQ(back.epoch, state.epoch);
    EXPECT_EQ(back.suppressed, state.suppressed);
    EXPECT_EQ(back.nextActionId, state.nextActionId);
    ASSERT_EQ(back.states.size(), state.states.size());
    ASSERT_EQ(back.actions.size(), state.actions.size());
    const ResponseOrchestrator rebuilt =
        ResponseOrchestrator::restored(policy, back);
    EXPECT_EQ(rebuilt.streamText(), orch.streamText());

    // Wrong-kind payloads are refused, garbage does not crash.
    ResponseOrchestratorState rejected;
    EXPECT_FALSE(persist::decodeResponseState(
        persist::encodeMeta(1, false, 0), rejected));
    EXPECT_FALSE(persist::decodeResponseState({0x04, 0x01}, rejected));
}

TEST(ResponseOrchestratorTest, StatEntriesCarryTheCounters)
{
    ResponsePolicy policy;
    UnitResponsePolicy fast;
    fast.escalateAfterIncidents = 1;
    policy.defaults = fast;
    ResponseOrchestrator orch(policy);
    orch.observeIncidents(
        {makeIncident(1, MonitorTarget::IntegerDivider)});

    const auto entries = orch.statEntries("respond.");
    const auto value = [&](const std::string& name) -> double {
        for (const auto& e : entries)
            if (e.name == name)
                return e.value;
        ADD_FAILURE() << "missing stat " << name;
        return -1.0;
    };
    EXPECT_EQ(value("respond.actions.total"), 1.0);
    EXPECT_EQ(value("respond.actions.engage"), 1.0);
    EXPECT_EQ(value("respond.actions.suppressed"), 0.0);
    EXPECT_EQ(value("respond.epoch"), 1.0);
    EXPECT_EQ(value("respond.level.rate-limit"), 1.0);
    EXPECT_EQ(value("respond.level.quarantine"), 0.0);
}

} // namespace
} // namespace cchunter
