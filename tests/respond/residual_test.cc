/**
 * @file
 * Residual-bandwidth and performance-tax probes, plus the in-run
 * auto-response: the measurement half of the closed loop.  The key
 * facts pinned here: an unmitigated channel decodes real payload
 * bandwidth, a quarantined channel decodes nothing (100% reduction —
 * the bench gate's backbone), and the benign tax orders with response
 * severity.
 */

#include <gtest/gtest.h>

#include "respond/residual.hh"

namespace cchunter
{
namespace
{

OnlineAuditOptions
dividerAudit()
{
    OnlineAuditOptions options;
    options.workload = AuditedWorkload::Divider;
    options.scenario.bandwidthBps = 10000.0;
    options.scenario.quanta = 8;
    options.scenario.quantum = 2500000;
    options.scenario.seed = 1;
    options.scenario.noiseProcesses = 0;
    options.online.clusteringIntervalQuanta = 4;
    return options;
}

ResponsePlan
planAt(ResponseLevel level)
{
    ResponsePlan plan;
    plan.level = level;
    return plan;
}

TEST(ResidualProbeTest, UnmitigatedChannelDecodesBandwidth)
{
    const ResidualProbe probe = probeResidualBandwidth(
        AuditedWorkload::Divider, dividerAudit(),
        planAt(ResponseLevel::Observe));
    EXPECT_GT(probe.wireBitsDecoded, 0u);
    EXPECT_GT(probe.effectiveBandwidthBps, 0.0);
    EXPECT_LT(probe.payloadBitErrorRate, 0.5);
    EXPECT_TRUE(probe.detected);
}

TEST(ResidualProbeTest, QuarantineSilencesTheChannelCompletely)
{
    const ResidualProbe baseline = probeResidualBandwidth(
        AuditedWorkload::Divider, dividerAudit(),
        planAt(ResponseLevel::Observe));
    const ResidualProbe quarantined = probeResidualBandwidth(
        AuditedWorkload::Divider, dividerAudit(),
        planAt(ResponseLevel::Quarantine));
    // Neither party is ever scheduled: zero decoded slots, zero
    // bandwidth — the deterministic floor behind the >=90% bench gate.
    EXPECT_EQ(quarantined.wireBitsDecoded, 0u);
    EXPECT_EQ(quarantined.effectiveBandwidthBps, 0.0);
    EXPECT_EQ(quarantined.pairActions, 0u);
    EXPECT_EQ(bandwidthReduction(baseline.effectiveBandwidthBps,
                                 quarantined.effectiveBandwidthBps),
              1.0);
}

TEST(ResidualProbeTest, ReductionHelperClampsAndHandlesZeroBaseline)
{
    EXPECT_EQ(bandwidthReduction(0.0, 0.0), 1.0);
    EXPECT_EQ(bandwidthReduction(100.0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(bandwidthReduction(100.0, 25.0), 0.75);
    EXPECT_EQ(bandwidthReduction(100.0, 200.0), 0.0);
}

TEST(ResidualProbeTest, ProbesAreDeterministic)
{
    const ResidualProbe a = probeResidualBandwidth(
        AuditedWorkload::Divider, dividerAudit(),
        planAt(ResponseLevel::TemporalPartition));
    const ResidualProbe b = probeResidualBandwidth(
        AuditedWorkload::Divider, dividerAudit(),
        planAt(ResponseLevel::TemporalPartition));
    EXPECT_EQ(a.wireBitsDecoded, b.wireBitsDecoded);
    EXPECT_DOUBLE_EQ(a.effectiveBandwidthBps,
                     b.effectiveBandwidthBps);
    EXPECT_EQ(a.pairActions, b.pairActions);
}

TEST(BenignTaxTest, TaxOrdersWithResponseSeverity)
{
    const OnlineAuditOptions base = dividerAudit();
    const TaxProbe none =
        measureBenignTax(base, planAt(ResponseLevel::Observe));
    const TaxProbe throttled =
        measureBenignTax(base, planAt(ResponseLevel::RateLimit));
    const TaxProbe quarantined =
        measureBenignTax(base, planAt(ResponseLevel::Quarantine));

    EXPECT_GT(none.baselineActions, 0u);
    EXPECT_EQ(none.tax, 0.0);
    // The spy-context throttle slows the pair; quarantine starves it.
    EXPECT_GT(throttled.tax, 0.0);
    EXPECT_GT(quarantined.tax, throttled.tax);
    EXPECT_GT(quarantined.tax, 0.9);
}

TEST(AutoResponseTest, EngagesMidRunAndCutsTheChannel)
{
    OnlineAuditOptions options = dividerAudit();
    options.autoRespond.enabled = true;
    options.autoRespond.plan = planAt(ResponseLevel::Quarantine);
    options.autoRespond.alarmThreshold = 1;

    const OnlineAuditResult mitigated = runOnlineAudit(options);
    ASSERT_TRUE(mitigated.response.engaged);
    EXPECT_EQ(mitigated.response.level, ResponseLevel::Quarantine);
    EXPECT_GT(mitigated.response.quantum, 0u);

    options.autoRespond.enabled = false;
    const OnlineAuditResult open = runOnlineAudit(options);
    EXPECT_FALSE(open.response.engaged);
    // The quarantine engaged mid-run, after the first alarm: the spy
    // decoded strictly less than in the unmitigated run.
    EXPECT_LT(mitigated.channel.wireBitsDecoded,
              open.channel.wireBitsDecoded);
    EXPECT_LT(mitigated.pairScheduledQuanta,
              open.pairScheduledQuanta);
}

TEST(AutoResponseTest, EngagementQuantumIsDeterministic)
{
    OnlineAuditOptions options = dividerAudit();
    options.autoRespond.enabled = true;
    options.autoRespond.plan = planAt(ResponseLevel::Quarantine);

    const OnlineAuditResult a = runOnlineAudit(options);
    const OnlineAuditResult b = runOnlineAudit(options);
    ASSERT_TRUE(a.response.engaged);
    EXPECT_EQ(a.response.quantum, b.response.quantum);
    EXPECT_EQ(a.channel.wireBitsDecoded, b.channel.wireBitsDecoded);
}

} // namespace
} // namespace cchunter
