/**
 * @file
 * Closed-loop fleet tests: the response action log inherits the
 * incident stream's determinism contract (byte-identical across shard
 * layouts, analysis fan-out and crash/resume at every batch boundary),
 * active response state survives a crash/restart through the snapshot,
 * and residual measurements surface in the report.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet_auditor.hh"
#include "persist/snapshot_file.hh"

namespace cchunter
{
namespace
{

constexpr std::size_t kFleetTenants = 8;

ResponsePolicy
aggressivePolicy()
{
    ResponsePolicy policy;
    policy.defaults.escalateAfterIncidents = 1;
    return policy;
}

class ClosedLoopFleetTest : public testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = std::filesystem::path(testing::TempDir()) /
               (std::string("cchunter_respond_") +
                testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    FleetAuditParams
    params(std::size_t shards, std::size_t analysisThreads = 1,
           bool persistOn = false) const
    {
        FleetAuditParams p;
        p.shards = shards;
        p.workerThreads = 2;
        p.analysisThreads = analysisThreads;
        p.respond.enabled = true;
        p.respond.policy = aggressivePolicy();
        if (persistOn) {
            p.persist.dir = dir_.string();
            p.persist.checkpointIntervalBatches = 3;
        }
        return p;
    }

    FleetAuditReport
    runFleet(const FleetAuditParams& p) const
    {
        const TenantRegistry registry = TenantRegistry::synthetic({});
        return FleetAuditor(registry, p).run();
    }

    std::filesystem::path dir_;
};

TEST_F(ClosedLoopFleetTest, IncidentsEngageTheLadder)
{
    const FleetAuditReport report = runFleet(params(2));
    ASSERT_TRUE(report.respond.enabled);
    // The synthetic fleet plants real channels; with a 1-incident
    // escalation threshold the loop must have engaged something.
    EXPECT_FALSE(report.incidents.incidents().empty());
    EXPECT_FALSE(report.respond.orchestrator.actions().empty());
    EXPECT_FALSE(report.respond.orchestrator.engagedPairs().empty());
    EXPECT_EQ(report.respond.orchestrator.epoch(), 1u);

    const auto entries = report.statEntries();
    bool sawActions = false;
    for (const auto& e : entries)
        if (e.name == "fleet.respond.actions.total") {
            sawActions = true;
            EXPECT_GT(e.value, 0.0);
        }
    EXPECT_TRUE(sawActions);

    // Respond off: no respond entries, report section disabled.
    FleetAuditParams off = params(2);
    off.respond.enabled = false;
    const FleetAuditReport quiet = runFleet(off);
    EXPECT_FALSE(quiet.respond.enabled);
    for (const auto& e : quiet.statEntries())
        EXPECT_EQ(e.name.rfind("fleet.respond.", 0),
                  std::string::npos);
}

TEST_F(ClosedLoopFleetTest, ActionLogByteIdenticalAcrossLayouts)
{
    const std::string baselineActions =
        runFleet(params(1)).respond.orchestrator.streamText();
    ASSERT_FALSE(baselineActions.empty());

    const std::size_t hw =
        std::max(2u, std::thread::hardware_concurrency());
    for (const std::size_t shards : {std::size_t(2), std::size_t(8)}) {
        for (const std::size_t threads : {std::size_t(1), hw}) {
            const FleetAuditReport report =
                runFleet(params(shards, threads));
            EXPECT_EQ(report.respond.orchestrator.streamText(),
                      baselineActions)
                << "shards=" << shards << " threads=" << threads;
        }
    }
}

TEST_F(ClosedLoopFleetTest, KillSweepPreservesTheActionLog)
{
    // Extends the PR-8 kill sweep to the response loop: die after
    // every durable batch count, resume, and demand the uninterrupted
    // run's action log byte for byte.
    const std::string baselineActions =
        runFleet(params(2)).respond.orchestrator.streamText();
    ASSERT_FALSE(baselineActions.empty());

    for (std::uint64_t k = 1; k <= kFleetTenants; ++k) {
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);

        FleetAuditParams crash = params(2, 1, true);
        crash.simulateCrashAfterBatches = k;
        const FleetAuditReport crashed = runFleet(crash);
        ASSERT_TRUE(crashed.crashed) << "k=" << k;
        // A killed run never orchestrates: respond stays off-path.
        EXPECT_FALSE(crashed.respond.enabled) << "k=" << k;

        FleetAuditParams resume = params(2, 1, true);
        resume.persist.resume = true;
        const FleetAuditReport resumed = runFleet(resume);
        EXPECT_FALSE(resumed.crashed) << "k=" << k;
        EXPECT_EQ(resumed.respond.orchestrator.streamText(),
                  baselineActions)
            << "k=" << k;
    }
}

TEST_F(ClosedLoopFleetTest, ActiveResponseStateSurvivesRestart)
{
    // Run 1 engages the ladder and snapshots it; run 2 resumes, so its
    // orchestrator continues from the persisted state (epoch 2) —
    // byte-identical to two uninterrupted back-to-back runs, even when
    // the second run is killed and resumed in between.
    const std::string twoEpochs = [&] {
        FleetAuditParams p = params(2, 1, true);
        runFleet(p);
        p.persist.resume = true;
        return runFleet(p).respond.orchestrator.streamText();
    }();

    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    runFleet(params(2, 1, true)); // epoch 1, snapshot carries state

    // The final snapshot decodes with the response record in place.
    const std::string snapshot = persist::snapshotPath(
        persist::PersistPolicy{.dir = dir_.string()});
    persist::FleetCheckpoint checkpoint;
    {
        const persist::RecordFileContents contents =
            persist::readRecordFile(snapshot,
                                    persist::ReadMode::Snapshot);
        ASSERT_TRUE(contents.clean());
        ASSERT_TRUE(
            persist::decodeFleetCheckpoint(contents, checkpoint));
        ASSERT_TRUE(checkpoint.respond.has_value());
        EXPECT_FALSE(checkpoint.respond->actions.empty());
        EXPECT_EQ(checkpoint.respond->epoch, 1u);
    }

    // Strip the batches (keep the response state) so the next resume
    // has to re-audit — the on-disk shape a run killed right after a
    // compaction would leave behind.
    checkpoint.batches.clear();
    checkpoint.finalized = false;
    checkpoint.incidents.reset();
    ASSERT_TRUE(persist::writeFileAtomic(
        snapshot, persist::encodeFleetCheckpoint(checkpoint)));
    std::filesystem::remove(persist::journalPath(
        persist::PersistPolicy{.dir = dir_.string()}));

    // Kill the re-audit mid-way; the mid-run checkpoints must carry
    // the restored response state forward across the crash.
    FleetAuditParams crash = params(2, 1, true);
    crash.persist.resume = true;
    crash.simulateCrashAfterBatches = 4;
    ASSERT_TRUE(runFleet(crash).crashed);

    FleetAuditParams resume = params(2, 1, true);
    resume.persist.resume = true;
    const FleetAuditReport resumed = runFleet(resume);
    EXPECT_FALSE(resumed.crashed);
    EXPECT_GT(resumed.respond.restoredActions, 0u);
    EXPECT_EQ(resumed.respond.orchestrator.epoch(), 2u);
    EXPECT_EQ(resumed.respond.orchestrator.streamText(), twoEpochs);
    EXPECT_GT(resumed.persist.restoredResponseActions, 0u);
}

TEST_F(ClosedLoopFleetTest, ResidualMeasurementsSurfaceInTheReport)
{
    FleetAuditParams p = params(2);
    p.respond.measureResidual = true;
    p.respond.maxResidualProbes = 1;
    const FleetAuditReport report = runFleet(p);
    ASSERT_TRUE(report.respond.enabled);
    ASSERT_EQ(report.respond.residuals.size(), 1u);

    const ResidualMeasurement& m = report.respond.residuals.front();
    EXPECT_NE(m.unit, MonitorTarget::None);
    EXPECT_GT(m.unmitigated.effectiveBandwidthBps, 0.0);
    EXPECT_GE(m.reduction, 0.0);
    EXPECT_LE(m.reduction, 1.0);
    EXPECT_GE(m.tax.tax, 0.0);
    EXPECT_GT(m.tax.baselineActions, 0u);

    const auto entries = report.statEntries();
    const auto value = [&](const std::string& name) -> double {
        for (const auto& e : entries)
            if (e.name == name)
                return e.value;
        ADD_FAILURE() << "missing stat " << name;
        return -1.0;
    };
    EXPECT_EQ(value("fleet.respond.residual.measurements"), 1.0);
    EXPECT_GE(value("fleet.respond.residual.meanReduction"), 0.0);
    EXPECT_GE(value("fleet.respond.residual.worstTax"), 0.0);
}

} // namespace
} // namespace cchunter
