#include <gtest/gtest.h>

#include <memory>

#include "channels/divider_channel.hh"
#include "mitigate/mitigator.hh"

namespace cchunter
{
namespace
{

MachineParams
smallMachine()
{
    MachineParams p;
    p.scheduler.quantum = 2500000;
    return p;
}

TEST(MitigationPolicyTest, RecommendationsPerTarget)
{
    EXPECT_EQ(recommendMitigation(MonitorTarget::MemoryBus),
              MitigationKind::RateLimitBusLocks);
    EXPECT_EQ(recommendMitigation(MonitorTarget::IntegerDivider),
              MitigationKind::UnshareCore);
    EXPECT_EQ(recommendMitigation(MonitorTarget::IntegerMultiplier),
              MitigationKind::UnshareCore);
    EXPECT_EQ(recommendMitigation(MonitorTarget::L2Cache),
              MitigationKind::UnshareCore);
    EXPECT_EQ(recommendMitigation(MonitorTarget::None),
              MitigationKind::None);
}

TEST(MitigationPolicyTest, Names)
{
    EXPECT_EQ(mitigationName(MitigationKind::UnshareCore),
              "unshare-core");
    EXPECT_EQ(mitigationName(MitigationKind::RateLimitBusLocks),
              "rate-limit-bus-locks");
    EXPECT_EQ(mitigationName(MitigationKind::None), "none");
}

TEST(BusRateLimitTest, ThrottlesLockFrequency)
{
    MemoryBus bus(BusParams{30, 1000});
    bus.setLockRateLimit(50000);
    const Tick first = bus.lockedTransfer(0, 0);
    // Second lock immediately after: pushed to 50k.
    const Tick second = bus.lockedTransfer(0, first);
    EXPECT_GE(second, 50000u + 1000u);
    EXPECT_EQ(bus.throttledLocks(), 1u);
    // A lock after the interval passes unthrottled.
    const Tick third = bus.lockedTransfer(0, 200000);
    EXPECT_EQ(third, 201000u);
    EXPECT_EQ(bus.throttledLocks(), 1u);
}

TEST(BusRateLimitTest, OrdinaryTransfersUnaffected)
{
    MemoryBus bus(BusParams{30, 1000});
    bus.setLockRateLimit(50000);
    EXPECT_EQ(bus.transfer(0, 0), 30u);
    EXPECT_EQ(bus.transfer(0, 100), 130u);
}

TEST(MitigatorTest, UnshareMovesProcessToAnotherCore)
{
    Machine machine(smallMachine());
    ChannelTiming timing;
    timing.start = 1000;
    timing.bandwidthBps = 10000.0;
    Rng rng(1);
    DividerTrojanParams tp;
    tp.timing = timing;
    tp.message = Message::random64(rng);
    machine.addProcess(std::make_unique<DividerTrojan>(tp), 0);
    DividerSpyParams sp;
    sp.timing = timing;
    auto spy = std::make_unique<DividerSpy>(sp);
    Process& spy_proc = machine.addProcess(std::move(spy), 1);

    CCAuditor auditor(machine);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorDivider(key, 0, 0);
    AuditDaemon daemon(machine, auditor);
    machine.runQuanta(2);
    ASSERT_TRUE(daemon.analyzeContention(0).detected);
    const auto before = machine.divider(0).totalConflicts();

    Mitigator mitigator(machine, daemon);
    const auto residents = mitigator.coreResidents(0);
    ASSERT_EQ(residents.size(), 2u);
    const MitigationReport report = mitigator.unshare(spy_proc.pid());
    EXPECT_TRUE(report.applied);
    EXPECT_EQ(report.migratedPid, spy_proc.pid());
    // The new context is on a different core.
    EXPECT_GE(report.newContext, 2);

    // After migration takes effect, the divider conflict stream dies.
    machine.runQuanta(1); // boundary applies the new pinning
    const auto at_switch = machine.divider(0).totalConflicts();
    machine.runQuanta(2);
    const auto after = machine.divider(0).totalConflicts();
    EXPECT_GT(before, 0u);
    EXPECT_EQ(after, at_switch);
}

TEST(MitigatorTest, UnshareUnknownPidIsSafe)
{
    Machine machine(smallMachine());
    CCAuditor auditor(machine);
    AuditDaemon daemon(machine, auditor);
    Mitigator mitigator(machine, daemon);
    const MitigationReport report = mitigator.unshare(99999);
    EXPECT_FALSE(report.applied);
}

TEST(MitigatorTest, RespondToBusAppliesRateLimit)
{
    Machine machine(smallMachine());
    CCAuditor auditor(machine);
    AuditDaemon daemon(machine, auditor);
    Mitigator mitigator(machine, daemon);
    const MitigationReport report =
        mitigator.respond(MonitorTarget::MemoryBus, 0);
    EXPECT_TRUE(report.applied);
    EXPECT_EQ(machine.mem().bus().lockRateLimit(), report.lockInterval);
    EXPECT_NE(report.summary().find("rate-limit"), std::string::npos);
}

} // namespace
} // namespace cchunter
