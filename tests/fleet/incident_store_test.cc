#include <gtest/gtest.h>

#include <sstream>

#include "fleet/incident_store.hh"
#include "sim/stats_report.hh"

namespace cchunter
{
namespace
{

Incident
tenantIncident(TenantId tenant, std::uint64_t signature,
               double score = 0.5)
{
    Incident incident;
    incident.tenant = tenant;
    incident.slot = 0;
    incident.unit = MonitorTarget::IntegerDivider;
    incident.kind = AlarmKind::Contention;
    incident.signature = signature;
    incident.occurrences = 2;
    incident.meanConfidence = 0.9;
    incident.minConfidence = 0.8;
    incident.score = score;
    incident.severity = IncidentSeverity::Warning;
    return incident;
}

TEST(IncidentStoreTest, AssignsSequentialIdsInEmissionOrder)
{
    IncidentStore store;
    EXPECT_TRUE(store.emit(tenantIncident(0, 1)));
    EXPECT_TRUE(store.emit(tenantIncident(1, 2)));
    EXPECT_TRUE(store.emit(tenantIncident(2, 3)));
    ASSERT_EQ(store.incidents().size(), 3u);
    EXPECT_EQ(store.incidents()[0].id, 0u);
    EXPECT_EQ(store.incidents()[1].id, 1u);
    EXPECT_EQ(store.incidents()[2].id, 2u);
    EXPECT_EQ(store.suppressed(), 0u);
}

TEST(IncidentStoreTest, PerTenantCapSuppressesNoisyTenantOnly)
{
    IncidentStore store(IncidentRateLimit{2, 0});
    EXPECT_TRUE(store.emit(tenantIncident(0, 1)));
    EXPECT_TRUE(store.emit(tenantIncident(0, 2)));
    EXPECT_FALSE(store.emit(tenantIncident(0, 3))); // over tenant cap
    EXPECT_TRUE(store.emit(tenantIncident(1, 4)));  // other tenant ok
    EXPECT_EQ(store.incidents().size(), 3u);
    EXPECT_EQ(store.suppressed(), 1u);
    // Ids stay dense despite the suppression.
    EXPECT_EQ(store.incidents().back().id, 2u);
}

TEST(IncidentStoreTest, FleetWideRecordsAreExemptFromTenantCap)
{
    IncidentStore store(IncidentRateLimit{1, 0});
    EXPECT_TRUE(store.emit(tenantIncident(0, 1)));
    EXPECT_FALSE(store.emit(tenantIncident(0, 2)));
    Incident fleet = tenantIncident(0, 3);
    fleet.fleetWide = true;
    fleet.correlatedTenants = {0, 1};
    EXPECT_TRUE(store.emit(fleet));
    EXPECT_EQ(store.fleetWideCount(), 1u);
}

TEST(IncidentStoreTest, TotalCapBoundsTheWholeStore)
{
    IncidentStore store(IncidentRateLimit{0, 2});
    EXPECT_TRUE(store.emit(tenantIncident(0, 1)));
    EXPECT_TRUE(store.emit(tenantIncident(1, 2)));
    EXPECT_FALSE(store.emit(tenantIncident(2, 3)));
    EXPECT_EQ(store.suppressed(), 1u);
}

TEST(IncidentStoreTest, CountsBySeverity)
{
    IncidentStore store;
    Incident info = tenantIncident(0, 1);
    info.severity = IncidentSeverity::Info;
    Incident critical = tenantIncident(1, 2);
    critical.severity = IncidentSeverity::Critical;
    store.emit(info);
    store.emit(critical);
    store.emit(tenantIncident(2, 3)); // warning
    EXPECT_EQ(store.countBySeverity(IncidentSeverity::Info), 1u);
    EXPECT_EQ(store.countBySeverity(IncidentSeverity::Warning), 1u);
    EXPECT_EQ(store.countBySeverity(IncidentSeverity::Critical), 1u);
}

TEST(IncidentStoreTest, StreamLineIsByteStable)
{
    Incident incident = tenantIncident(3, 0x0200aa0000000007ull);
    incident.id = 5;
    incident.firstQuantum = 4;
    incident.lastQuantum = 12;
    incident.correlated = true;
    EXPECT_EQ(incident.streamLine(),
              "incident 5 tenant=3 slot=0 unit=divider"
              " kind=contention sig=0x0200aa0000000007"
              " quanta=[4,12] occ=2 conf=0.9000/0.8000"
              " score=0.5000 sev=warning corr=1");

    Incident fleet;
    fleet.id = 6;
    fleet.fleetWide = true;
    fleet.unit = MonitorTarget::L2Cache;
    fleet.kind = AlarmKind::Oscillation;
    fleet.signature = 0x0401000000000008ull;
    fleet.firstQuantum = 1;
    fleet.lastQuantum = 7;
    fleet.occurrences = 6;
    fleet.meanConfidence = 1.0;
    fleet.minConfidence = 1.0;
    fleet.score = 0.75;
    fleet.severity = IncidentSeverity::Critical;
    fleet.correlatedTenants = {0, 2, 5};
    EXPECT_EQ(fleet.streamLine(),
              "incident 6 fleet-wide unit=cache kind=oscillation"
              " sig=0x0401000000000008 quanta=[1,7] occ=6"
              " conf=1.0000/1.0000 score=0.7500 sev=critical"
              " tenants=[0,2,5]");
}

TEST(IncidentStoreTest, StreamHashMatchesOnlyIdenticalStreams)
{
    IncidentStore a;
    IncidentStore b;
    a.emit(tenantIncident(0, 1));
    a.emit(tenantIncident(1, 2));
    b.emit(tenantIncident(0, 1));
    b.emit(tenantIncident(1, 2));
    EXPECT_EQ(a.streamText(), b.streamText());
    EXPECT_EQ(a.streamHash(), b.streamHash());

    IncidentStore c;
    c.emit(tenantIncident(0, 1));
    c.emit(tenantIncident(1, 3)); // one signature differs
    EXPECT_NE(a.streamHash(), c.streamHash());
}

TEST(IncidentStoreTest, StatEntriesRoundTripThroughDump)
{
    IncidentStore store;
    store.emit(tenantIncident(0, 1));
    Incident fleet = tenantIncident(0, 2);
    fleet.fleetWide = true;
    store.emit(fleet);

    const auto entries = store.statEntries();
    std::ostringstream os;
    dumpStatEntries(entries, os, "fleet incidents");
    std::istringstream is(os.str());
    const auto parsed = parseStatEntries(is);
    ASSERT_EQ(parsed.size(), entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(parsed[i].name, entries[i].name);
        EXPECT_DOUBLE_EQ(parsed[i].value, entries[i].value);
    }
}

} // namespace
} // namespace cchunter
