#include <gtest/gtest.h>

#include "fleet/fleet_auditor.hh"
#include "scenario/experiment.hh"
#include "util/thread_pool.hh"

namespace cchunter
{
namespace
{

SyntheticFleetOptions
smallFleet(std::size_t tenants)
{
    SyntheticFleetOptions options;
    options.tenants = tenants;
    options.seed = 1;
    options.quanta = 8;
    options.quantum = 2500000;
    options.clusteringIntervalQuanta = 4;
    return options;
}

TEST(FleetAuditorTest, EmptyRegistryProducesEmptyReport)
{
    TenantRegistry registry;
    FleetAuditor auditor(registry);
    FleetAuditReport report = auditor.run();
    EXPECT_EQ(report.tenantsAudited, 0u);
    EXPECT_TRUE(report.incidents.incidents().empty());
}

TEST(FleetAuditorTest, ShardCountClampsToFleetSize)
{
    TenantRegistry registry;
    registry.add({0, "", {}});
    registry.add({1, "", {}});
    FleetAuditParams params;
    params.shards = 16;
    FleetAuditor auditor(registry, params);
    EXPECT_EQ(auditor.effectiveShards(), 2u);
}

TEST(FleetAuditorTest, AuditsEveryTenantAndFindsPlantedChannels)
{
    const TenantRegistry registry =
        TenantRegistry::synthetic(smallFleet(4));
    FleetAuditParams params;
    params.shards = 2;
    FleetAuditor auditor(registry, params);
    FleetAuditReport report = auditor.run();

    EXPECT_EQ(report.tenantsAudited, 4u);
    EXPECT_EQ(report.shardsUsed, 2u);
    EXPECT_EQ(report.quantaTotal, 4u * 8u);
    // Every tenant carries a planted channel; the fleet must notice.
    EXPECT_GT(report.alarmsTotal, 0u);
    EXPECT_FALSE(report.incidents.incidents().empty());
    // The hand-off accounting matches the plan.
    ASSERT_EQ(report.shards.size(), 2u);
    EXPECT_EQ(report.shards[0].tenants, 2u);
    EXPECT_EQ(report.shards[1].tenants, 2u);
    EXPECT_EQ(report.shards[0].batchesPushed, 2u);
    EXPECT_EQ(report.shards[1].batchesPushed, 2u);
    EXPECT_EQ(report.shards[0].batchesDropped, 0u);
    // Stat entries carry the two-level shard prefixes.
    const auto entries = report.statEntries();
    bool sawShardEntry = false;
    for (const StatEntry& entry : entries)
        sawShardEntry |= entry.name == "fleet.shard1.alarms";
    EXPECT_TRUE(sawShardEntry);
}

TEST(FleetAuditorTest, IncidentStreamIndependentOfShardAndThreadCount)
{
    // The tentpole determinism contract: for a fixed registry the
    // incident stream is bit-identical across shard counts and
    // per-tenant analysis thread counts (Block hand-off preserves
    // every batch; DropOldest would be timing-dependent).
    const TenantRegistry registry =
        TenantRegistry::synthetic(smallFleet(8));

    const auto runWith = [&](std::size_t shards,
                             std::size_t analysis_threads) {
        FleetAuditParams params;
        params.shards = shards;
        params.analysisThreads = analysis_threads;
        FleetAuditor auditor(registry, params);
        return auditor.run();
    };

    FleetAuditReport baseline = runWith(1, 1);
    const std::string text = baseline.incidents.streamText();
    const std::uint64_t hash = baseline.incidents.streamHash();
    EXPECT_FALSE(text.empty());

    for (const std::size_t shards : {2, 8}) {
        FleetAuditReport report = runWith(shards, 1);
        EXPECT_EQ(report.incidents.streamText(), text)
            << "shards=" << shards;
        EXPECT_EQ(report.incidents.streamHash(), hash);
        EXPECT_EQ(report.alarmsTotal, baseline.alarmsTotal);
    }

    FleetAuditReport threaded =
        runWith(2, ThreadPool::hardwareConcurrency());
    EXPECT_EQ(threaded.incidents.streamText(), text);
    EXPECT_EQ(threaded.incidents.streamHash(), hash);
}

TEST(FleetAuditorTest, SharedSeedFleetCorrelatesAcrossTenants)
{
    // Two tenants carrying the *same* divider channel (shared seed):
    // the aggregator must recognise the shared signature and raise a
    // fleet-wide record with both tenants listed.
    SyntheticFleetOptions options = smallFleet(2);
    options.mix = {AuditedWorkload::Divider};
    options.distinctSeeds = false;
    const TenantRegistry registry = TenantRegistry::synthetic(options);

    FleetAuditParams params;
    params.shards = 2;
    FleetAuditor auditor(registry, params);
    FleetAuditReport report = auditor.run();

    ASSERT_GT(report.alarmsTotal, 0u);
    ASSERT_GE(report.incidents.fleetWideCount(), 1u);
    const Incident& fleet = report.incidents.incidents().back();
    EXPECT_TRUE(fleet.fleetWide);
    ASSERT_EQ(fleet.correlatedTenants.size(), 2u);
    EXPECT_EQ(fleet.correlatedTenants[0], 0u);
    EXPECT_EQ(fleet.correlatedTenants[1], 1u);
    EXPECT_EQ(fleet.unit, MonitorTarget::IntegerDivider);
}

} // namespace
} // namespace cchunter
