#include <gtest/gtest.h>

#include <thread>

#include "fleet/alarm_aggregator.hh"

namespace cchunter
{
namespace
{

Alarm
makeAlarm(unsigned slot, std::uint64_t quantum,
          std::uint64_t feature = 7, double confidence = 1.0,
          MonitorTarget unit = MonitorTarget::IntegerDivider,
          AlarmKind kind = AlarmKind::Contention)
{
    Alarm alarm;
    alarm.slot = slot;
    alarm.quantum = quantum;
    alarm.confidence = confidence;
    alarm.unit = unit;
    alarm.kind = kind;
    alarm.dominantFeature = feature;
    return alarm;
}

TenantAlarmBatch
makeBatch(TenantId tenant, std::vector<Alarm> alarms)
{
    TenantAlarmBatch batch;
    batch.tenant = tenant;
    batch.alarms = std::move(alarms);
    return batch;
}

TEST(AlarmAggregatorTest, MergesRepeatedAlarmsWithinGap)
{
    AlarmAggregator aggregator;
    aggregator.ingest(makeBatch(
        0, {makeAlarm(0, 4), makeAlarm(0, 8), makeAlarm(0, 12)}));
    IncidentStore store;
    aggregator.finalize(store);
    ASSERT_EQ(store.incidents().size(), 1u);
    const Incident& incident = store.incidents()[0];
    EXPECT_EQ(incident.occurrences, 3u);
    EXPECT_EQ(incident.firstQuantum, 4u);
    EXPECT_EQ(incident.lastQuantum, 12u);
    EXPECT_FALSE(incident.correlated);
}

TEST(AlarmAggregatorTest, GapBeyondDedupWindowStartsFreshIncident)
{
    AggregatorParams params;
    params.dedupGapQuanta = 4;
    AlarmAggregator aggregator(params);
    aggregator.ingest(
        makeBatch(0, {makeAlarm(0, 4), makeAlarm(0, 20)}));
    IncidentStore store;
    aggregator.finalize(store);
    ASSERT_EQ(store.incidents().size(), 2u);
    EXPECT_EQ(store.incidents()[0].lastQuantum, 4u);
    EXPECT_EQ(store.incidents()[1].firstQuantum, 20u);
}

TEST(AlarmAggregatorTest, DistinctSignaturesStayDistinct)
{
    AlarmAggregator aggregator;
    aggregator.ingest(makeBatch(
        0, {makeAlarm(0, 4, 7), makeAlarm(0, 4, 9)}));
    IncidentStore store;
    aggregator.finalize(store);
    EXPECT_EQ(store.incidents().size(), 2u);
}

TEST(AlarmAggregatorTest, ConfidenceFloorFiltersAndCounts)
{
    AggregatorParams params;
    params.minConfidence = 0.5;
    AlarmAggregator aggregator(params);
    aggregator.ingest(makeBatch(0, {makeAlarm(0, 4, 7, 0.3),
                                    makeAlarm(0, 8, 7, 0.9)}));
    IncidentStore store;
    aggregator.finalize(store);
    ASSERT_EQ(store.incidents().size(), 1u);
    EXPECT_EQ(store.incidents()[0].occurrences, 1u);
    EXPECT_EQ(aggregator.alarmsFiltered(), 1u);
    EXPECT_EQ(aggregator.alarmsSeen(), 2u);
}

TEST(AlarmAggregatorTest, SustainedDetectionScoresHigher)
{
    AlarmAggregator aggregator;
    aggregator.ingest(makeBatch(0, {makeAlarm(0, 4, 7)}));
    aggregator.ingest(makeBatch(
        1, {makeAlarm(0, 4, 9), makeAlarm(0, 8, 9), makeAlarm(0, 12, 9),
            makeAlarm(0, 16, 9), makeAlarm(0, 20, 9),
            makeAlarm(0, 24, 9), makeAlarm(0, 28, 9),
            makeAlarm(0, 32, 9)}));
    IncidentStore store;
    aggregator.finalize(store);
    ASSERT_EQ(store.incidents().size(), 2u);
    const Incident& oneOff = store.incidents()[0];
    const Incident& sustained = store.incidents()[1];
    EXPECT_LT(oneOff.score, sustained.score);
    // Eight merged full-confidence alarms saturate the score at 1.0.
    EXPECT_DOUBLE_EQ(sustained.score, 1.0);
    EXPECT_EQ(sustained.severity, IncidentSeverity::Critical);
}

TEST(AlarmAggregatorTest, CrossTenantSignatureEarnsFleetWideRecord)
{
    AlarmAggregator aggregator;
    aggregator.ingest(makeBatch(0, {makeAlarm(0, 4, 7)}));
    aggregator.ingest(makeBatch(2, {makeAlarm(1, 6, 7)}));
    aggregator.ingest(makeBatch(1, {makeAlarm(0, 5, 9)}));
    IncidentStore store;
    aggregator.finalize(store);

    // Tenant incidents in ascending-tenant order, then the fleet-wide
    // record for the shared signature.
    ASSERT_EQ(store.incidents().size(), 4u);
    EXPECT_EQ(store.incidents()[0].tenant, 0u);
    EXPECT_EQ(store.incidents()[1].tenant, 1u);
    EXPECT_EQ(store.incidents()[2].tenant, 2u);
    EXPECT_TRUE(store.incidents()[0].correlated);
    EXPECT_FALSE(store.incidents()[1].correlated);
    EXPECT_TRUE(store.incidents()[2].correlated);

    const Incident& fleet = store.incidents()[3];
    EXPECT_TRUE(fleet.fleetWide);
    EXPECT_EQ(fleet.signature,
              makeAlarm(0, 0, 7).channelSignature());
    ASSERT_EQ(fleet.correlatedTenants.size(), 2u);
    EXPECT_EQ(fleet.correlatedTenants[0], 0u);
    EXPECT_EQ(fleet.correlatedTenants[1], 2u);
    EXPECT_EQ(fleet.occurrences, 2u);
    // Correlated members outrank an equally-confident lone detection.
    EXPECT_GT(store.incidents()[0].score,
              store.incidents()[1].score);
}

TEST(AlarmAggregatorTest, SameTenantRecurrenceIsNotFleetWide)
{
    // Two incidents with the same signature on ONE tenant (a gap
    // split) must not fabricate a cross-tenant correlation.
    AggregatorParams params;
    params.dedupGapQuanta = 2;
    AlarmAggregator aggregator(params);
    aggregator.ingest(
        makeBatch(0, {makeAlarm(0, 4), makeAlarm(0, 20)}));
    IncidentStore store;
    aggregator.finalize(store);
    ASSERT_EQ(store.incidents().size(), 2u);
    EXPECT_EQ(store.fleetWideCount(), 0u);
    EXPECT_FALSE(store.incidents()[0].correlated);
}

TEST(AlarmAggregatorTest, IngestOrderDoesNotChangeTheStream)
{
    const auto batches = [] {
        return std::vector<TenantAlarmBatch>{
            makeBatch(0, {makeAlarm(0, 4, 7), makeAlarm(0, 8, 7)}),
            makeBatch(1, {makeAlarm(0, 5, 7)}),
            makeBatch(2, {makeAlarm(1, 6, 11, 0.8,
                                    MonitorTarget::L2Cache,
                                    AlarmKind::Oscillation)}),
        };
    };

    AlarmAggregator forward;
    for (auto& batch : batches())
        forward.ingest(std::move(batch));
    IncidentStore forwardStore;
    forward.finalize(forwardStore);

    AlarmAggregator reverse;
    auto reversed = batches();
    for (auto it = reversed.rbegin(); it != reversed.rend(); ++it)
        reverse.ingest(std::move(*it));
    IncidentStore reverseStore;
    reverse.finalize(reverseStore);

    EXPECT_EQ(forwardStore.streamText(), reverseStore.streamText());
    EXPECT_EQ(forwardStore.streamHash(), reverseStore.streamHash());
}

TEST(AlarmAggregatorTest, ConcurrentIngestIsSafeAndComplete)
{
    AlarmAggregator aggregator;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < 8; ++t)
        threads.emplace_back([&aggregator, t]() {
            aggregator.ingest(makeBatch(
                t, {makeAlarm(0, 4, 100 + t)}));
        });
    for (std::thread& thread : threads)
        thread.join();
    EXPECT_EQ(aggregator.batchesIngested(), 8u);
    EXPECT_EQ(aggregator.alarmsSeen(), 8u);
    IncidentStore store;
    aggregator.finalize(store);
    EXPECT_EQ(store.incidents().size(), 8u);
}

TEST(AlarmAggregatorTest, AccumulatesPipelineAndDegradedLedgers)
{
    AlarmAggregator aggregator;
    TenantAlarmBatch a = makeBatch(0, {});
    a.pipeline.drainedHistograms = 10;
    a.degraded.missedQuanta = 1;
    TenantAlarmBatch b = makeBatch(1, {});
    b.pipeline.drainedHistograms = 5;
    b.degraded.missedQuanta = 2;
    aggregator.ingest(std::move(a));
    aggregator.ingest(std::move(b));
    EXPECT_EQ(aggregator.pipeline().drainedHistograms, 15u);
    EXPECT_EQ(aggregator.degraded().missedQuanta, 3u);
}

} // namespace
} // namespace cchunter
