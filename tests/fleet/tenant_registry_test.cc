#include <gtest/gtest.h>

#include "fleet/tenant_registry.hh"

namespace cchunter
{
namespace
{

TEST(TenantRegistryTest, KeepsTenantsInAscendingIdOrder)
{
    TenantRegistry registry;
    registry.add({7, "late", {}});
    registry.add({2, "early", {}});
    registry.add({5, "middle", {}});
    ASSERT_EQ(registry.size(), 3u);
    EXPECT_EQ(registry.tenants()[0].id, 2u);
    EXPECT_EQ(registry.tenants()[1].id, 5u);
    EXPECT_EQ(registry.tenants()[2].id, 7u);
}

TEST(TenantRegistryTest, DefaultsDisplayNameFromId)
{
    TenantRegistry registry;
    registry.add({3, "", {}});
    EXPECT_EQ(registry.at(3).name, "tenant3");
}

TEST(TenantRegistryTest, LookupAndContains)
{
    TenantRegistry registry;
    registry.add({1, "one", {}});
    registry.add({4, "four", {}});
    EXPECT_TRUE(registry.contains(1));
    EXPECT_TRUE(registry.contains(4));
    EXPECT_FALSE(registry.contains(2));
    EXPECT_EQ(registry.at(4).name, "four");
}

TEST(TenantRegistryTest, ShardAssignmentIsStableAndModular)
{
    // id % shards: independent of what else is registered, so adding
    // a tenant never migrates existing ones.
    EXPECT_EQ(TenantRegistry::shardOf(0, 4), 0u);
    EXPECT_EQ(TenantRegistry::shardOf(5, 4), 1u);
    EXPECT_EQ(TenantRegistry::shardOf(7, 4), 3u);
    EXPECT_EQ(TenantRegistry::shardOf(7, 1), 0u);
    // A zero shard count clamps to one rather than dividing by zero.
    EXPECT_EQ(TenantRegistry::shardOf(9, 0), 0u);
}

TEST(TenantRegistryTest, ShardPlanPartitionsAllTenantsAscending)
{
    TenantRegistry registry;
    for (TenantId id = 0; id < 10; ++id)
        registry.add({id, "", {}});
    const auto plan = registry.shardPlan(4);
    ASSERT_EQ(plan.size(), 4u);
    std::size_t total = 0;
    for (std::size_t s = 0; s < plan.size(); ++s) {
        total += plan[s].size();
        for (std::size_t i = 0; i < plan[s].size(); ++i) {
            EXPECT_EQ(TenantRegistry::shardOf(plan[s][i], 4), s);
            if (i > 0)
                EXPECT_LT(plan[s][i - 1], plan[s][i]);
        }
    }
    EXPECT_EQ(total, registry.size());
    // Dense ids balance: 10 tenants over 4 shards -> sizes 3,3,2,2.
    EXPECT_EQ(plan[0].size(), 3u);
    EXPECT_EQ(plan[1].size(), 3u);
    EXPECT_EQ(plan[2].size(), 2u);
    EXPECT_EQ(plan[3].size(), 2u);
}

TEST(TenantRegistryTest, SyntheticFleetIsDeterministic)
{
    SyntheticFleetOptions options;
    options.tenants = 6;
    options.seed = 42;
    const TenantRegistry a = TenantRegistry::synthetic(options);
    const TenantRegistry b = TenantRegistry::synthetic(options);
    ASSERT_EQ(a.size(), 6u);
    ASSERT_EQ(b.size(), 6u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.tenants()[i].id, b.tenants()[i].id);
        EXPECT_EQ(a.tenants()[i].audit.workload,
                  b.tenants()[i].audit.workload);
        EXPECT_EQ(a.tenants()[i].audit.scenario.seed,
                  b.tenants()[i].audit.scenario.seed);
    }
}

TEST(TenantRegistryTest, SyntheticFleetCyclesMixAndDerivesSeeds)
{
    SyntheticFleetOptions options;
    options.tenants = 4;
    options.seed = 100;
    options.mix = {AuditedWorkload::Divider, AuditedWorkload::Cache};
    const TenantRegistry registry = TenantRegistry::synthetic(options);
    EXPECT_EQ(registry.at(0).audit.workload, AuditedWorkload::Divider);
    EXPECT_EQ(registry.at(1).audit.workload, AuditedWorkload::Cache);
    EXPECT_EQ(registry.at(2).audit.workload, AuditedWorkload::Divider);
    EXPECT_EQ(registry.at(3).audit.workload, AuditedWorkload::Cache);
    EXPECT_EQ(registry.at(0).audit.scenario.seed, 100u);
    EXPECT_EQ(registry.at(3).audit.scenario.seed, 103u);
    // Cache tenants get the cache bandwidth, the rest the contention
    // bandwidth.
    EXPECT_DOUBLE_EQ(registry.at(1).audit.scenario.bandwidthBps,
                     options.cacheBandwidthBps);
    EXPECT_DOUBLE_EQ(registry.at(0).audit.scenario.bandwidthBps,
                     options.contentionBandwidthBps);
}

TEST(TenantRegistryTest, SharedSeedFleetCarriesIdenticalChannels)
{
    SyntheticFleetOptions options;
    options.tenants = 3;
    options.mix = {AuditedWorkload::Divider};
    options.distinctSeeds = false;
    const TenantRegistry registry = TenantRegistry::synthetic(options);
    EXPECT_EQ(registry.at(0).audit.scenario.seed,
              registry.at(2).audit.scenario.seed);
}

} // namespace
} // namespace cchunter
