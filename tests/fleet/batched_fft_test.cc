/**
 * @file
 * Batched fleet FFT equivalence tests.
 *
 * With fleet.batchedFft on, every shard resolves its tenants'
 * end-of-run oscillation transforms through one shared FFT plan and
 * scratch arena.  The incident stream must stay byte-identical to the
 * unbatched run — and across shard layouts and per-tenant analysis
 * thread counts — because batching shares twiddle tables and buffers,
 * never the dataflow of one series.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet_auditor.hh"

using namespace cchunter;

namespace
{

FleetAuditReport
runFleet(std::size_t shards, std::size_t analysis_threads,
         bool batched_fft)
{
    const TenantRegistry registry = TenantRegistry::synthetic({});
    FleetAuditParams params;
    params.shards = shards;
    params.workerThreads = 2;
    params.analysisThreads = analysis_threads;
    params.batchedFft = batched_fft;
    FleetAuditor auditor(registry, params);
    return auditor.run();
}

std::uint64_t
totalOf(const FleetAuditReport& report,
        std::uint64_t ShardStats::*field)
{
    std::uint64_t total = 0;
    for (const ShardStats& shard : report.shards)
        total += shard.*field;
    return total;
}

} // namespace

TEST(BatchedFleetFftTest, StreamByteIdenticalAcrossShardsAndThreads)
{
    const std::size_t hw =
        std::max(2u, std::thread::hardware_concurrency());

    const FleetAuditReport reference = runFleet(1, 1, false);
    const std::string expected = reference.incidents.streamText();
    ASSERT_FALSE(expected.empty());

    for (const std::size_t shards : {1u, 2u, 8u}) {
        for (const std::size_t threads : {std::size_t{1}, hw}) {
            for (const bool batched : {true, false}) {
                const FleetAuditReport report =
                    runFleet(shards, threads, batched);
                EXPECT_EQ(report.incidents.streamText(), expected)
                    << "shards=" << shards << " threads=" << threads
                    << " batched=" << batched;
                EXPECT_EQ(report.incidents.streamHash(),
                          reference.incidents.streamHash());
            }
        }
    }
}

TEST(BatchedFleetFftTest, BatchedPassActuallyRuns)
{
    const FleetAuditReport batched = runFleet(2, 1, true);
    const FleetAuditReport unbatched = runFleet(2, 1, false);
    // The synthetic fleet's cache tenants retain FFT-qualifying label
    // series, so the batched pass must have transformed some of them;
    // with batching off the counter stays untouched.
    EXPECT_GT(totalOf(batched, &ShardStats::batchedSeries), 0u);
    EXPECT_EQ(totalOf(unbatched, &ShardStats::batchedSeries), 0u);
}

TEST(BatchedFleetFftTest, OfflineVerdictsIdenticalEitherWay)
{
    const FleetAuditReport batched = runFleet(2, 1, true);
    const FleetAuditReport unbatched = runFleet(2, 1, false);
    EXPECT_EQ(totalOf(batched, &ShardStats::offlineDetected),
              totalOf(unbatched, &ShardStats::offlineDetected));
    EXPECT_EQ(batched.tenantsAudited, unbatched.tenantsAudited);
    EXPECT_EQ(batched.alarmsTotal, unbatched.alarmsTotal);
}

TEST(BatchedFleetFftTest, StatEntriesCarryTheNewCounters)
{
    const FleetAuditReport report = runFleet(2, 1, true);
    const auto entries = report.statEntries();
    bool sawOffline = false;
    bool sawBatched = false;
    for (const StatEntry& entry : entries) {
        if (entry.name == "fleet.shard0.offlineDetected")
            sawOffline = true;
        if (entry.name == "fleet.shard0.batchedSeries")
            sawBatched = true;
    }
    EXPECT_TRUE(sawOffline);
    EXPECT_TRUE(sawBatched);
}
