#include <gtest/gtest.h>

#include "auditor/daemon.hh"
#include "scenario/experiment.hh"

namespace cchunter
{
namespace
{

TEST(ChannelSignatureTest, PacksUnitKindAndFeatureWithoutStrings)
{
    Alarm alarm;
    alarm.unit = MonitorTarget::L2Cache;
    alarm.kind = AlarmKind::Oscillation;
    alarm.dominantFeature = 0x123456789ABCull;
    const std::uint64_t expected =
        (std::uint64_t{4} << 56) | (std::uint64_t{1} << 48) |
        0x123456789ABCull;
    EXPECT_EQ(alarm.channelSignature(), expected);
}

TEST(ChannelSignatureTest, FeatureIsMaskedTo48Bits)
{
    Alarm alarm;
    alarm.unit = MonitorTarget::IntegerDivider;
    alarm.kind = AlarmKind::Contention;
    alarm.dominantFeature = ~std::uint64_t{0};
    const std::uint64_t signature = alarm.channelSignature();
    EXPECT_EQ(signature >> 56, 2u);
    EXPECT_EQ((signature >> 48) & 0xff, 0u);
    EXPECT_EQ(signature & ((std::uint64_t{1} << 48) - 1),
              (std::uint64_t{1} << 48) - 1);
}

TEST(ChannelSignatureTest, DiffersAcrossUnitsKindsAndFeatures)
{
    Alarm a;
    a.unit = MonitorTarget::MemoryBus;
    a.dominantFeature = 7;
    Alarm b = a;
    b.unit = MonitorTarget::IntegerDivider;
    Alarm c = a;
    c.kind = AlarmKind::Oscillation;
    Alarm d = a;
    d.dominantFeature = 8;
    EXPECT_NE(a.channelSignature(), b.channelSignature());
    EXPECT_NE(a.channelSignature(), c.channelSignature());
    EXPECT_NE(a.channelSignature(), d.channelSignature());
}

OnlineAuditOptions
dividerAudit()
{
    OnlineAuditOptions options;
    options.workload = AuditedWorkload::Divider;
    options.scenario.bandwidthBps = 10000.0;
    options.scenario.quanta = 8;
    options.scenario.quantum = 2500000;
    options.scenario.seed = 11;
    options.scenario.noiseProcesses = 0;
    options.online.clusteringIntervalQuanta = 4;
    return options;
}

TEST(ChannelSignatureTest, StableAcrossIdenticalRuns)
{
    const OnlineAuditResult first = runOnlineAudit(dividerAudit());
    const OnlineAuditResult second = runOnlineAudit(dividerAudit());
    ASSERT_FALSE(first.alarms.empty());
    ASSERT_EQ(first.alarms.size(), second.alarms.size());
    for (std::size_t i = 0; i < first.alarms.size(); ++i) {
        EXPECT_EQ(first.alarms[i].channelSignature(),
                  second.alarms[i].channelSignature());
        EXPECT_EQ(first.alarms[i].quantum, second.alarms[i].quantum);
        EXPECT_EQ(first.alarms[i].slot, second.alarms[i].slot);
        EXPECT_EQ(first.alarms[i].dominantFeature,
                  second.alarms[i].dominantFeature);
    }
}

TEST(ChannelSignatureTest, CarriesTheAuditedUnit)
{
    const OnlineAuditResult result = runOnlineAudit(dividerAudit());
    ASSERT_FALSE(result.alarms.empty());
    for (const Alarm& alarm : result.alarms) {
        EXPECT_EQ(alarm.unit, MonitorTarget::IntegerDivider);
        EXPECT_EQ(alarm.kind, AlarmKind::Contention);
        EXPECT_EQ(alarm.channelSignature() >> 56,
                  static_cast<std::uint64_t>(alarm.unit));
    }
}

} // namespace
} // namespace cchunter
