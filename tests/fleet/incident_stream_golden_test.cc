/**
 * @file
 * Golden-file regression test for the fleet incident stream.
 *
 * The canonical streamText() of the default 8-tenant synthetic
 * registry is checked in below, byte for byte.  Any change to alarm
 * ordering, scoring, correlation, rate limiting, or rendering shows
 * up as a diff against this fixture — and the stream (plus its FNV-1a
 * hash) must be identical across shard layouts and analysis thread
 * counts, which is the fleet determinism contract.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "fleet/fleet_auditor.hh"

using namespace cchunter;

namespace
{

/** Canonical stream of TenantRegistry::synthetic({}) (8 tenants,
 *  divider+cache mix, seed 1, 8 quanta).  Regenerate by printing
 *  report.incidents.streamText() after an intentional change. */
const char* const kGoldenStream =
    "incident 0 tenant=0 slot=0 unit=divider kind=contention sig=0x0200000000000060 quanta=[3,7] occ=2 conf=1.0000/1.0000 score=0.8750 sev=critical corr=1\n"
    "incident 1 tenant=1 slot=0 unit=cache kind=oscillation sig=0x0401000000000205 quanta=[2,6] occ=2 conf=1.0000/1.0000 score=0.6250 sev=warning corr=0\n"
    "incident 2 tenant=1 slot=0 unit=cache kind=oscillation sig=0x0401000000000204 quanta=[3,4] occ=2 conf=1.0000/1.0000 score=0.8750 sev=critical corr=1\n"
    "incident 3 tenant=1 slot=0 unit=cache kind=oscillation sig=0x0401000000000203 quanta=[5,7] occ=2 conf=1.0000/1.0000 score=0.8750 sev=critical corr=1\n"
    "incident 4 tenant=2 slot=0 unit=divider kind=contention sig=0x0200000000000060 quanta=[3,7] occ=2 conf=1.0000/1.0000 score=0.8750 sev=critical corr=1\n"
    "incident 5 tenant=3 slot=0 unit=cache kind=oscillation sig=0x0401000000000203 quanta=[1,3] occ=2 conf=1.0000/1.0000 score=0.8750 sev=critical corr=1\n"
    "incident 6 tenant=3 slot=0 unit=cache kind=oscillation sig=0x0401000000000201 quanta=[5,5] occ=1 conf=1.0000/1.0000 score=0.8125 sev=critical corr=1\n"
    "incident 7 tenant=3 slot=0 unit=cache kind=oscillation sig=0x0401000000000202 quanta=[6,6] occ=1 conf=1.0000/1.0000 score=0.8125 sev=critical corr=1\n"
    "incident 8 tenant=4 slot=0 unit=divider kind=contention sig=0x0200000000000060 quanta=[3,7] occ=2 conf=1.0000/1.0000 score=0.8750 sev=critical corr=1\n"
    "incident 9 tenant=5 slot=0 unit=cache kind=oscillation sig=0x0401000000000204 quanta=[2,3] occ=2 conf=1.0000/1.0000 score=0.8750 sev=critical corr=1\n"
    "incident 10 tenant=5 slot=0 unit=cache kind=oscillation sig=0x0401000000000202 quanta=[4,4] occ=1 conf=1.0000/1.0000 score=0.8125 sev=critical corr=1\n"
    "incident 11 tenant=5 slot=0 unit=cache kind=oscillation sig=0x0401000000000201 quanta=[5,5] occ=1 conf=1.0000/1.0000 score=0.8125 sev=critical corr=1\n"
    "incident 12 tenant=5 slot=0 unit=cache kind=oscillation sig=0x0401000000000203 quanta=[7,7] occ=1 conf=1.0000/1.0000 score=0.8125 sev=critical corr=1\n"
    "incident 13 tenant=6 slot=0 unit=divider kind=contention sig=0x0200000000000060 quanta=[3,7] occ=2 conf=1.0000/1.0000 score=0.8750 sev=critical corr=1\n"
    "incident 14 tenant=7 slot=0 unit=cache kind=oscillation sig=0x0401000000000202 quanta=[1,7] occ=2 conf=1.0000/1.0000 score=0.8750 sev=critical corr=1\n"
    "incident 15 tenant=7 slot=0 unit=cache kind=oscillation sig=0x0401000000000206 quanta=[3,6] occ=2 conf=1.0000/1.0000 score=0.6250 sev=warning corr=0\n"
    "incident 16 tenant=7 slot=0 unit=cache kind=oscillation sig=0x0401000000000204 quanta=[4,4] occ=1 conf=1.0000/1.0000 score=0.8125 sev=critical corr=1\n"
    "incident 17 fleet-wide unit=divider kind=contention sig=0x0200000000000060 quanta=[3,7] occ=8 conf=1.0000/1.0000 score=0.8750 sev=critical tenants=[0,2,4,6]\n"
    "incident 18 fleet-wide unit=cache kind=oscillation sig=0x0401000000000201 quanta=[5,5] occ=2 conf=1.0000/1.0000 score=0.8125 sev=critical tenants=[3,5]\n"
    "incident 19 fleet-wide unit=cache kind=oscillation sig=0x0401000000000202 quanta=[1,7] occ=4 conf=1.0000/1.0000 score=0.8750 sev=critical tenants=[3,5,7]\n"
    "incident 20 fleet-wide unit=cache kind=oscillation sig=0x0401000000000203 quanta=[1,7] occ=5 conf=1.0000/1.0000 score=0.8750 sev=critical tenants=[1,3,5]\n"
    "incident 21 fleet-wide unit=cache kind=oscillation sig=0x0401000000000204 quanta=[2,4] occ=5 conf=1.0000/1.0000 score=0.8750 sev=critical tenants=[1,5,7]\n";

constexpr std::uint64_t kGoldenHash = 11842952238281650353ull;

FleetAuditReport
runDefaultFleet(std::size_t shards, std::size_t analysis_threads)
{
    const TenantRegistry registry = TenantRegistry::synthetic({});
    FleetAuditParams params;
    params.shards = shards;
    params.workerThreads = 2;
    params.analysisThreads = analysis_threads;
    FleetAuditor auditor(registry, params);
    return auditor.run();
}

} // namespace

TEST(IncidentStreamGoldenTest, MatchesCheckedInStreamByteForByte)
{
    const FleetAuditReport report = runDefaultFleet(4, 1);
    EXPECT_EQ(report.incidents.streamText(), kGoldenStream);
    EXPECT_EQ(report.incidents.streamHash(), kGoldenHash);
}

TEST(IncidentStreamGoldenTest, HashStableAcrossAnalysisThreads)
{
    const std::size_t hw = std::max(
        2u, std::thread::hardware_concurrency());
    const FleetAuditReport serial = runDefaultFleet(4, 1);
    const FleetAuditReport parallel = runDefaultFleet(4, hw);
    EXPECT_EQ(serial.incidents.streamHash(), kGoldenHash);
    EXPECT_EQ(parallel.incidents.streamHash(), kGoldenHash);
    EXPECT_EQ(parallel.incidents.streamText(), kGoldenStream);
}

TEST(IncidentStreamGoldenTest, HashStableAcrossShardCounts)
{
    for (const std::size_t shards : {1u, 3u, 8u}) {
        const FleetAuditReport report = runDefaultFleet(shards, 1);
        EXPECT_EQ(report.incidents.streamHash(), kGoldenHash)
            << "shards=" << shards;
    }
}

TEST(IncidentStreamGoldenTest, ShardCountEdgeCasesClampSafely)
{
    const TenantRegistry registry = TenantRegistry::synthetic({});
    // More shards than tenants: clamped to the fleet size.
    FleetAuditParams params;
    params.shards = 64;
    params.workerThreads = 2;
    FleetAuditor wide(registry, params);
    EXPECT_EQ(wide.effectiveShards(), registry.size());
    EXPECT_EQ(wide.run().incidents.streamHash(), kGoldenHash);
    // Zero asks for the hardware concurrency; still clamped and
    // still canonical.
    params.shards = 0;
    FleetAuditor automatic(registry, params);
    EXPECT_GE(automatic.effectiveShards(), 1u);
    EXPECT_LE(automatic.effectiveShards(), registry.size());
    EXPECT_EQ(automatic.run().incidents.streamHash(), kGoldenHash);
    // The shard-plan rule itself clamps a zero request.
    EXPECT_EQ(registry.shardPlan(0).size(), 1u);
}
