/**
 * @file
 * Differential decode guarantee of the evasive corpus: evading the
 * detector must not break the channel.  Every evasive entry still has
 * to deliver its payload through the spy's decoder — otherwise the
 * arms race is vacuous (an undetectable channel that transmits nothing
 * is just silence) — and the link-layer protocol adversary has to
 * survive each evasive schedule too.
 */

#include <gtest/gtest.h>

#include <string>

#include "eval/labelled_corpus.hh"
#include "scenario/experiment.hh"

namespace cchunter
{
namespace
{

/** Pinned payload-BER ceiling of the evasive corpus.  Most entries
 *  decode perfectly; the jittered TLB schedule loses one wire slot in
 *  eight (0.125), so the ceiling sits just above it. */
constexpr double kBerCeiling = 0.15;

void
expectStrategyDecodes(EvasionStrategy strategy)
{
    std::size_t entries = 0;
    for (const LabelledScenario& entry : buildLabelledCorpus()) {
        if (entry.strategy != strategy)
            continue;
        ++entries;
        const OnlineAuditResult r = runOnlineAudit(entry.audit);
        EXPECT_TRUE(r.channel.present) << entry.name;
        EXPECT_LE(r.channel.payloadBitErrorRate, kBerCeiling)
            << entry.name;
    }
    // One evasive positive per registered unit.
    EXPECT_EQ(entries, 5u);
}

TEST(EvasionDecodeTest, RandomGapsStillDecodeOnEveryUnit)
{
    expectStrategyDecodes(EvasionStrategy::RandomGaps);
}

TEST(EvasionDecodeTest, DutyCycleStillDecodesOnEveryUnit)
{
    expectStrategyDecodes(EvasionStrategy::DutyCycle);
}

TEST(EvasionDecodeTest, LowAndSlowStillDecodesOnEveryUnit)
{
    expectStrategyDecodes(EvasionStrategy::LowAndSlow);
}

TEST(EvasionDecodeTest, ProtocolLayerSurvivesEvasiveSchedules)
{
    // The protocol adversary frames and forward-error-corrects the
    // wire bits; an evasive schedule only moves WHEN those bits go
    // out, so the payload must still come through under it.  The run
    // has to cover the full ~96-bit frame burst, so it uses the
    // protocol operating point (ten wire bits per quantum) instead of
    // the corpus's one-bit-per-quantum rate, with the low-and-slow
    // stretch compensated by a longer run.
    for (const LabelledScenario& entry : buildLabelledCorpus()) {
        if (entry.strategy == EvasionStrategy::None ||
            entry.audit.workload != AuditedWorkload::Tlb)
            continue;
        OnlineAuditOptions options = entry.audit;
        options.scenario.protocol.enabled = true;
        options.scenario.bandwidthBps = 10000.0;
        options.scenario.message = Message::fromBits(
            {true, false, true, true, false, false, true, false});
        options.scenario.quanta = 12;
        if (entry.strategy == EvasionStrategy::LowAndSlow)
            options.scenario.quanta *=
                options.scenario.evasion.stretch;
        options.online.retentionQuanta = options.scenario.quanta;
        const OnlineAuditResult r = runOnlineAudit(options);
        EXPECT_TRUE(r.channel.present) << entry.name;
        EXPECT_LE(r.channel.payloadBitErrorRate, kBerCeiling)
            << entry.name << " under protocol";
    }
}

} // namespace
} // namespace cchunter
