/**
 * @file
 * Fuzz-style negative tests of the arms-race configuration surface:
 * every malformed EvasionPlan knob and every unknown detect.backend
 * name must die with a message that names the offending key and the
 * valid range, never silently clamp or misparse.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "channels/evasion.hh"
#include "detect/detector.hh"
#include "util/config.hh"

namespace cchunter
{
namespace
{

/** Run fn, which should fatal(); return its message ("" if it ran). */
template <typename Fn>
std::string
fatalMessageOf(Fn&& fn)
{
    try {
        fn();
    } catch (const std::runtime_error& e) {
        return e.what();
    }
    return "";
}

bool
contains(const std::string& haystack, const std::string& needle)
{
    return haystack.find(needle) != std::string::npos;
}

TEST(EvasionNegativeTest, GapJitterOutsideUnitIntervalIsFatal)
{
    for (const double bad : {-0.1, 1.0001, 7.0}) {
        EvasionPlan plan;
        plan.gapJitter = bad;
        const std::string message =
            fatalMessageOf([&] { plan.validate(); });
        EXPECT_TRUE(contains(message, "gap_jitter")) << message;
        EXPECT_TRUE(contains(message, "[0, 1]")) << message;
    }
}

TEST(EvasionNegativeTest, DutyRangeOutsideHalfOpenIntervalIsFatal)
{
    EvasionPlan plan;
    plan.dutyMin = 0.0;
    EXPECT_TRUE(contains(fatalMessageOf([&] { plan.validate(); }),
                         "duty_min"));
    plan = {};
    plan.dutyMax = 1.5;
    EXPECT_TRUE(contains(fatalMessageOf([&] { plan.validate(); }),
                         "duty_max"));
    plan = {};
    plan.dutyMin = 0.8;
    plan.dutyMax = 0.4;
    const std::string crossed =
        fatalMessageOf([&] { plan.validate(); });
    EXPECT_TRUE(contains(crossed, "exceeds duty_max")) << crossed;
}

TEST(EvasionNegativeTest, ZeroStretchIsFatal)
{
    EvasionPlan plan;
    plan.stretch = 0;
    EXPECT_TRUE(contains(fatalMessageOf([&] { plan.validate(); }),
                         "stretch"));
}

TEST(EvasionNegativeTest, UnknownStrategyNameIsFatalAndListsValid)
{
    const std::string message = fatalMessageOf(
        [] { evasionStrategyFromName("quiet"); });
    EXPECT_TRUE(contains(message, "quiet")) << message;
    EXPECT_TRUE(contains(message, "valid: none, gaps, duty, lowslow"))
        << message;
    // The happy path round-trips every strategy.
    for (const EvasionStrategy s :
         {EvasionStrategy::None, EvasionStrategy::RandomGaps,
          EvasionStrategy::DutyCycle, EvasionStrategy::LowAndSlow})
        EXPECT_EQ(evasionStrategyFromName(evasionStrategyName(s)), s);
}

TEST(EvasionNegativeTest, MalformedPlanConfigIsFatal)
{
    Config cfg;
    cfg.set("evasion.strategy", std::string("gaps"));
    cfg.set("evasion.gap_jitter", 2.0);
    EXPECT_TRUE(contains(
        fatalMessageOf([&] { EvasionPlan::fromConfig(cfg); }),
        "gap_jitter"));
    Config unknown;
    unknown.set("evasion.strategy", std::string("burst"));
    EXPECT_TRUE(contains(
        fatalMessageOf([&] { EvasionPlan::fromConfig(unknown); }),
        "unknown evasion strategy"));
}

TEST(EvasionNegativeTest, PlanConfigRoundTrips)
{
    EvasionPlan plan;
    plan.strategy = EvasionStrategy::DutyCycle;
    plan.seed = 99;
    plan.gapJitter = 0.5;
    plan.dutyMin = 0.3;
    plan.dutyMax = 0.6;
    plan.stretch = 4;
    Config cfg;
    plan.toConfig(cfg);
    const EvasionPlan back = EvasionPlan::fromConfig(cfg);
    EXPECT_EQ(back.strategy, plan.strategy);
    EXPECT_EQ(back.seed, plan.seed);
    EXPECT_DOUBLE_EQ(back.gapJitter, plan.gapJitter);
    EXPECT_DOUBLE_EQ(back.dutyMin, plan.dutyMin);
    EXPECT_DOUBLE_EQ(back.dutyMax, plan.dutyMax);
    EXPECT_EQ(back.stretch, plan.stretch);
}

TEST(EvasionNegativeTest, UnknownDetectBackendIsFatalAndListsValid)
{
    const std::string message =
        fatalMessageOf([] { detectBackendFromName("bayes"); });
    EXPECT_TRUE(contains(message, "bayes")) << message;
    EXPECT_TRUE(contains(message, "valid: cchunter, indicator2"))
        << message;
    EXPECT_EQ(detectBackendFromName("cchunter"),
              DetectBackend::CCHunter);
    EXPECT_EQ(detectBackendFromName("indicator2"),
              DetectBackend::Indicator2);
}

TEST(EvasionNegativeTest, DuplicateConfigKeysAreFatal)
{
    const char* argv[] = {"prog", "evasion.stretch=4",
                          "evasion.stretch=8"};
    const std::string message = fatalMessageOf(
        [&] { Config::fromArgs(3, argv); });
    EXPECT_TRUE(contains(message, "duplicate config key")) << message;
    EXPECT_TRUE(contains(message, "evasion.stretch")) << message;
}

} // namespace
} // namespace cchunter
