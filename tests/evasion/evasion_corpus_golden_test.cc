/**
 * @file
 * Golden pins of the evasion-extended corpus.  The detection-quality
 * baseline is only meaningful while the corpus underneath it stays
 * put, so this file pins the extended corpus' shape — entry count,
 * the evasive names and labels, the position-derived seeds — and the
 * scorer's byte-identical-JSON contract across analysis thread
 * counts.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "eval/quality_scorer.hh"

namespace cchunter
{
namespace
{

/** The evasive tail of the default corpus, in corpus order. */
const std::vector<std::string> kEvasiveNames = {
    "evasive/gaps/bus",       "evasive/gaps/divider",
    "evasive/gaps/multiplier", "evasive/gaps/cache",
    "evasive/gaps/tlb",       "evasive/duty/bus",
    "evasive/duty/divider",   "evasive/duty/multiplier",
    "evasive/duty/cache",     "evasive/duty/tlb",
    "evasive/lowslow/bus",    "evasive/lowslow/divider",
    "evasive/lowslow/multiplier", "evasive/lowslow/cache",
    "evasive/lowslow/tlb",
};

TEST(EvasionCorpusGoldenTest, ExtendedCorpusShapeIsPinned)
{
    const auto corpus = buildLabelledCorpus();
    ASSERT_EQ(corpus.size(), 39u);
    // The evasive axis is appended after every older entry, so the
    // pre-evasion corpus (and its position-derived seeds) stays
    // bit-identical to the previous baseline.
    const std::size_t first = corpus.size() - kEvasiveNames.size();
    for (std::size_t i = 0; i < kEvasiveNames.size(); ++i) {
        const LabelledScenario& entry = corpus[first + i];
        EXPECT_EQ(entry.name, kEvasiveNames[i]);
        EXPECT_EQ(entry.category, CorpusCategory::EvasiveChannel);
        EXPECT_TRUE(entry.covert) << entry.name;
        EXPECT_EQ(entry.strategy,
                  entry.audit.scenario.evasion.strategy)
            << entry.name;
        EXPECT_NE(entry.strategy, EvasionStrategy::None)
            << entry.name;
    }
    for (std::size_t i = 0; i < first; ++i)
        EXPECT_EQ(corpus[i].strategy, EvasionStrategy::None)
            << corpus[i].name;
}

TEST(EvasionCorpusGoldenTest, SeedsStayPositionDerived)
{
    CorpusOptions options;
    options.seed = 42;
    const auto corpus = buildLabelledCorpus(options);
    for (std::size_t i = 0; i < corpus.size(); ++i)
        EXPECT_EQ(corpus[i].audit.scenario.seed,
                  options.seed + 1000 * (i + 1))
            << corpus[i].name;
    // The shared evasion jitter seed derives from the base seed too.
    for (const LabelledScenario& entry : corpus) {
        if (entry.strategy != EvasionStrategy::None) {
            EXPECT_EQ(entry.audit.scenario.evasion.seed,
                      options.seed + 77)
                << entry.name;
        }
    }
}

TEST(EvasionCorpusGoldenTest, StrategyLabelOnlyOnEvasiveEntries)
{
    for (const LabelledScenario& entry : buildLabelledCorpus()) {
        const Config label = entry.label();
        if (entry.strategy == EvasionStrategy::None) {
            // Older entries' label dumps must stay byte-identical to
            // the pre-arms-race corpus: no stray strategy key.
            EXPECT_FALSE(label.has("corpus.strategy")) << entry.name;
            continue;
        }
        EXPECT_EQ(label.getString("corpus.strategy"),
                  evasionStrategyName(entry.strategy))
            << entry.name;
        EXPECT_EQ(label.getString("corpus.category"), "evasive")
            << entry.name;
    }
}

TEST(EvasionCorpusGoldenTest, ScoringJsonIsThreadCountInvariant)
{
    // The full report (including the evasion head-to-head section)
    // must not depend on the analysis fan-out.
    CorpusOptions corpus;
    corpus.contentionBandwidths = {10000.0};
    corpus.cacheBandwidths = {1000.0};
    corpus.includeDegraded = false;
    corpus.includeAdversarial = false;
    QualityScorerOptions serial;
    serial.analysisThreads = 1;
    QualityScorerOptions fanned;
    fanned.analysisThreads =
        std::max(2u, std::thread::hardware_concurrency());
    const std::string a =
        scoreCorpus(buildLabelledCorpus(corpus), serial).toJson();
    const std::string b =
        scoreCorpus(buildLabelledCorpus(corpus), fanned).toJson();
    EXPECT_EQ(a, b);
    // And the evasion section is actually in the report.
    EXPECT_NE(a.find("\"evasion\""), std::string::npos);
}

} // namespace
} // namespace cchunter
