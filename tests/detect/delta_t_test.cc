#include <gtest/gtest.h>

#include "detect/delta_t.hh"

namespace cchunter
{
namespace
{

TEST(DeltaTTest, InverseRateScaling)
{
    // 1000 events uniformly over 1e6 ticks -> rate 1e-3; alpha=2 ->
    // delta_t = 2000.
    EventTrain t(0, 1000000);
    for (Tick tick = 0; tick < 1000000; tick += 1000)
        t.addEvent(tick);
    EXPECT_EQ(determineDeltaT(t, 2.0), 2000u);
}

TEST(DeltaTTest, ClampsToBounds)
{
    EventTrain t(0, 1000);
    for (Tick tick = 0; tick < 1000; tick += 10)
        t.addEvent(tick);
    // Unclamped value would be 10 * alpha.
    EXPECT_EQ(determineDeltaT(t, 1.0, 50, 100), 50u);
    EXPECT_EQ(determineDeltaT(t, 100.0, 1, 200), 200u);
}

TEST(DeltaTTest, EmptyTrainGivesMinimum)
{
    EventTrain t(0, 1000);
    EXPECT_EQ(determineDeltaT(t, 1.0, 7, 100), 7u);
}

TEST(DeltaTTest, InvalidAlphaThrows)
{
    EventTrain t(0, 10);
    t.addEvent(1);
    EXPECT_ANY_THROW(determineDeltaT(t, 0.0));
    EXPECT_ANY_THROW(determineDeltaT(t, -1.0));
}

TEST(DeltaTTest, NeverReturnsZero)
{
    EventTrain t(0, 10);
    for (Tick tick = 0; tick < 10; ++tick)
        t.addEvent(tick);
    EXPECT_GE(determineDeltaT(t, 1e-9), 1u);
}

TEST(AlphaTest, PositiveForValidTiming)
{
    ResourceTiming timing;
    EXPECT_GT(alphaForResource(timing), 0.0);
}

TEST(AlphaTest, WiderBandwidthRangeRaisesAlpha)
{
    ResourceTiming narrow;
    narrow.maxBandwidthBps = 100.0;
    narrow.minBandwidthBps = 10.0;
    ResourceTiming wide = narrow;
    wide.minBandwidthBps = 0.1;
    EXPECT_GT(alphaForResource(wide), alphaForResource(narrow));
}

TEST(AlphaTest, MoreConflictsPerBitLowersAlpha)
{
    ResourceTiming few;
    few.conflictsPerBit = 5.0;
    ResourceTiming many = few;
    many.conflictsPerBit = 50.0;
    EXPECT_GT(alphaForResource(few), alphaForResource(many));
}

TEST(AlphaTest, InvalidTimingThrows)
{
    ResourceTiming t;
    t.maxBandwidthBps = 0.0;
    EXPECT_ANY_THROW(alphaForResource(t));
    t = ResourceTiming{};
    t.minBandwidthBps = 2000.0; // above max
    EXPECT_ANY_THROW(alphaForResource(t));
    t = ResourceTiming{};
    t.conflictsPerBit = 0.0;
    EXPECT_ANY_THROW(alphaForResource(t));
}

TEST(DeltaTTest, PaperScaleBusChannel)
{
    // A bus channel that locks the bus ~25 times per bit at 10 bps
    // produces ~250 events/second; with the default alpha the derived
    // delta-t should land within the broad usable range the paper
    // describes (neither ~1 cycle nor ~the whole quantum).
    EventTrain t(0, secondsToTicks(1.0));
    const Tick step = secondsToTicks(1.0) / 250;
    for (Tick tick = 0; tick < secondsToTicks(1.0); tick += step)
        t.addEvent(tick);
    const Tick dt = determineDeltaT(t, alphaForResource(ResourceTiming{}));
    EXPECT_GT(dt, 1000u);
    EXPECT_LT(dt, secondsToTicks(0.1));
}

} // namespace
} // namespace cchunter
