/**
 * @file
 * Property tests for the autocorrelation kernel: mathematical
 * invariants that must hold for arbitrary inputs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "detect/autocorrelation.hh"
#include "util/rng.hh"

namespace cchunter
{
namespace
{

std::vector<double>
randomSeries(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<double> s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        s.push_back(rng.nextGaussian(0.0, 1.0));
    return s;
}

class AutocorrPropertyTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AutocorrPropertyTest, CoefficientsBoundedByOne)
{
    const auto s = randomSeries(GetParam(), 700);
    const auto gram = autocorrelogram(s, 300);
    for (double r : gram) {
        EXPECT_LE(r, 1.0 + 1e-9);
        EXPECT_GE(r, -1.0 - 1e-9);
    }
}

TEST_P(AutocorrPropertyTest, LagZeroIsExactlyOne)
{
    const auto s = randomSeries(GetParam() + 100, 500);
    EXPECT_NEAR(autocorrelationAt(s, 0), 1.0, 1e-12);
}

TEST_P(AutocorrPropertyTest, ShiftInvariant)
{
    // Adding a constant to the series must not change r_p.
    const auto s = randomSeries(GetParam() + 200, 400);
    std::vector<double> shifted = s;
    for (double& v : shifted)
        v += 1234.5;
    for (std::size_t lag : {1u, 7u, 63u}) {
        EXPECT_NEAR(autocorrelationAt(s, lag),
                    autocorrelationAt(shifted, lag), 1e-9);
    }
}

TEST_P(AutocorrPropertyTest, ScaleInvariant)
{
    // Multiplying by a positive constant must not change r_p.
    const auto s = randomSeries(GetParam() + 300, 400);
    std::vector<double> scaled = s;
    for (double& v : scaled)
        v *= 42.0;
    for (std::size_t lag : {1u, 11u, 97u}) {
        EXPECT_NEAR(autocorrelationAt(s, lag),
                    autocorrelationAt(scaled, lag), 1e-9);
    }
}

TEST_P(AutocorrPropertyTest, PeriodicSeriesPeaksAtMultiples)
{
    Rng rng(GetParam() + 400);
    const std::size_t period = 20 + rng.nextBelow(60);
    std::vector<double> s;
    for (std::size_t i = 0; i < period * 30; ++i)
        s.push_back(std::sin(2.0 * M_PI *
                             static_cast<double>(i % period) /
                             static_cast<double>(period)) +
                    rng.nextGaussian(0.0, 0.1));
    const double at_period = autocorrelationAt(s, period);
    const double at_half = autocorrelationAt(s, period / 2);
    EXPECT_GT(at_period, 0.8);
    EXPECT_LT(at_half, at_period);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutocorrPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST_P(AutocorrPropertyTest, FftMatchesNaiveOnRandomSeries)
{
    // Non-power-of-two length exercises the transform padding.
    const auto s = randomSeries(GetParam() + 500, 3001);
    const std::size_t max_lag = 777;
    const auto naive = autocorrelogramNaive(s, max_lag);
    const auto fft = autocorrelogramFft(s, max_lag);
    ASSERT_EQ(fft.size(), naive.size());
    for (std::size_t lag = 0; lag <= max_lag; ++lag)
        EXPECT_NEAR(fft[lag], naive[lag], 1e-9) << "lag=" << lag;
}

TEST_P(AutocorrPropertyTest, FftMatchesNaiveOnPeriodicSeries)
{
    Rng rng(GetParam() + 600);
    const std::size_t period = 16 + rng.nextBelow(200);
    std::vector<double> s;
    for (std::size_t i = 0; i < 4096; ++i)
        s.push_back((i % period) < period / 2 ? 1.0 : 0.0);
    const auto naive = autocorrelogramNaive(s, 1000);
    const auto fft = autocorrelogramFft(s, 1000);
    for (std::size_t lag = 0; lag < naive.size(); ++lag)
        EXPECT_NEAR(fft[lag], naive[lag], 1e-9) << "lag=" << lag;
}

TEST(AutocorrFftEquivalenceTest, ConstantSeriesBothAllZero)
{
    const std::vector<double> s(2048, 3.25);
    const auto naive = autocorrelogramNaive(s, 400);
    const auto fft = autocorrelogramFft(s, 400);
    ASSERT_EQ(fft.size(), naive.size());
    for (std::size_t lag = 0; lag < naive.size(); ++lag) {
        EXPECT_DOUBLE_EQ(naive[lag], 0.0);
        EXPECT_DOUBLE_EQ(fft[lag], 0.0);
    }
}

TEST(AutocorrFftEquivalenceTest, LagZeroIsExactlyOneOnFftPath)
{
    const auto s = randomSeries(901, 5000);
    const auto fft = autocorrelogramFft(s, 100);
    EXPECT_DOUBLE_EQ(fft[0], 1.0);
}

TEST(AutocorrFftEquivalenceTest, MaxLagBeyondSeriesLength)
{
    const auto s = randomSeries(902, 500);
    const auto naive = autocorrelogramNaive(s, 600);
    const auto fft = autocorrelogramFft(s, 600);
    ASSERT_EQ(fft.size(), 601u);
    for (std::size_t lag = 0; lag <= 600; ++lag)
        EXPECT_NEAR(fft[lag], naive[lag], 1e-9) << "lag=" << lag;
    // Lags past the series length are exactly zero on both paths.
    for (std::size_t lag = 500; lag <= 600; ++lag)
        EXPECT_DOUBLE_EQ(fft[lag], 0.0);
}

TEST(AutocorrFftEquivalenceTest, DispatcherUsesFftAboveThreshold)
{
    // Above the op-count threshold the public entry point must return
    // the FFT result bit-for-bit.
    const auto s = randomSeries(903, 40000);
    const auto dispatched = autocorrelogram(s, 1000);
    const auto fft = autocorrelogramFft(s, 1000);
    EXPECT_EQ(dispatched, fft);
}

TEST(AutocorrFftEquivalenceTest, DispatcherUsesNaiveBelowThreshold)
{
    const auto s = randomSeries(904, 100);
    const auto dispatched = autocorrelogram(s, 50);
    const auto naive = autocorrelogramNaive(s, 50);
    EXPECT_EQ(dispatched, naive);
}

TEST(AutocorrPropertyTest2, WhiteNoiseStaysNearZeroEverywhere)
{
    const auto s = randomSeries(777, 20000);
    const auto gram = autocorrelogram(s, 500);
    // 3-sigma band for white noise: ~3/sqrt(n).
    const double band = 3.0 / std::sqrt(20000.0);
    std::size_t outside = 0;
    for (std::size_t lag = 1; lag < gram.size(); ++lag)
        outside += std::abs(gram[lag]) > band;
    // Allow a small tail beyond 3 sigma.
    EXPECT_LT(outside, 10u);
}

} // namespace
} // namespace cchunter
