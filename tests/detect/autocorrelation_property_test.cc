/**
 * @file
 * Property tests for the autocorrelation kernel: mathematical
 * invariants that must hold for arbitrary inputs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "detect/autocorrelation.hh"
#include "util/rng.hh"

namespace cchunter
{
namespace
{

std::vector<double>
randomSeries(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<double> s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        s.push_back(rng.nextGaussian(0.0, 1.0));
    return s;
}

class AutocorrPropertyTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AutocorrPropertyTest, CoefficientsBoundedByOne)
{
    const auto s = randomSeries(GetParam(), 700);
    const auto gram = autocorrelogram(s, 300);
    for (double r : gram) {
        EXPECT_LE(r, 1.0 + 1e-9);
        EXPECT_GE(r, -1.0 - 1e-9);
    }
}

TEST_P(AutocorrPropertyTest, LagZeroIsExactlyOne)
{
    const auto s = randomSeries(GetParam() + 100, 500);
    EXPECT_NEAR(autocorrelationAt(s, 0), 1.0, 1e-12);
}

TEST_P(AutocorrPropertyTest, ShiftInvariant)
{
    // Adding a constant to the series must not change r_p.
    const auto s = randomSeries(GetParam() + 200, 400);
    std::vector<double> shifted = s;
    for (double& v : shifted)
        v += 1234.5;
    for (std::size_t lag : {1u, 7u, 63u}) {
        EXPECT_NEAR(autocorrelationAt(s, lag),
                    autocorrelationAt(shifted, lag), 1e-9);
    }
}

TEST_P(AutocorrPropertyTest, ScaleInvariant)
{
    // Multiplying by a positive constant must not change r_p.
    const auto s = randomSeries(GetParam() + 300, 400);
    std::vector<double> scaled = s;
    for (double& v : scaled)
        v *= 42.0;
    for (std::size_t lag : {1u, 11u, 97u}) {
        EXPECT_NEAR(autocorrelationAt(s, lag),
                    autocorrelationAt(scaled, lag), 1e-9);
    }
}

TEST_P(AutocorrPropertyTest, PeriodicSeriesPeaksAtMultiples)
{
    Rng rng(GetParam() + 400);
    const std::size_t period = 20 + rng.nextBelow(60);
    std::vector<double> s;
    for (std::size_t i = 0; i < period * 30; ++i)
        s.push_back(std::sin(2.0 * M_PI *
                             static_cast<double>(i % period) /
                             static_cast<double>(period)) +
                    rng.nextGaussian(0.0, 0.1));
    const double at_period = autocorrelationAt(s, period);
    const double at_half = autocorrelationAt(s, period / 2);
    EXPECT_GT(at_period, 0.8);
    EXPECT_LT(at_half, at_period);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutocorrPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(AutocorrPropertyTest2, WhiteNoiseStaysNearZeroEverywhere)
{
    const auto s = randomSeries(777, 20000);
    const auto gram = autocorrelogram(s, 500);
    // 3-sigma band for white noise: ~3/sqrt(n).
    const double band = 3.0 / std::sqrt(20000.0);
    std::size_t outside = 0;
    for (std::size_t lag = 1; lag < gram.size(); ++lag)
        outside += std::abs(gram[lag]) > band;
    // Allow a small tail beyond 3 sigma.
    EXPECT_LT(outside, 10u);
}

} // namespace
} // namespace cchunter
