/**
 * @file
 * Property-based tests for the detect/ primitives on degenerate and
 * randomized inputs.  All randomness is seeded, so every run checks
 * the exact same cases.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "detect/autocorrelation.hh"
#include "detect/discretizer.hh"
#include "util/histogram.hh"
#include "util/rng.hh"

using namespace cchunter;

TEST(AutocorrDegenerateTest, EmptySeriesYieldsAllZero)
{
    const std::vector<double> empty;
    const std::vector<double> corr = autocorrelogram(empty, 16);
    ASSERT_EQ(corr.size(), 17u);
    for (const double r : corr)
        EXPECT_EQ(r, 0.0);
    EXPECT_EQ(autocorrelationAt(empty, 0), 0.0);
    EXPECT_EQ(autocorrelationAt(empty, 3), 0.0);
}

TEST(AutocorrDegenerateTest, ConstantSeriesHasZeroVarianceEverywhere)
{
    for (const double level : {0.0, 1.0, -7.5}) {
        const std::vector<double> series(100, level);
        const std::vector<double> corr = autocorrelogram(series, 20);
        for (std::size_t lag = 0; lag < corr.size(); ++lag)
            EXPECT_EQ(corr[lag], 0.0)
                << "level " << level << " lag " << lag;
    }
}

TEST(AutocorrDegenerateTest, SingleSpikeNeverOscillates)
{
    // One spike in a flat series: r_0 is 1 and every positive lag is
    // slightly negative (the spike never re-aligns with itself), so
    // no peak detector may fire on it.
    std::vector<double> series(128, 0.0);
    series[40] = 1.0;
    const std::vector<double> corr = autocorrelogram(series, 32);
    EXPECT_DOUBLE_EQ(corr[0], 1.0);
    for (std::size_t lag = 1; lag < corr.size(); ++lag)
        EXPECT_LT(corr[lag], 0.05) << "lag " << lag;
    EXPECT_TRUE(findPeaks(corr, 0.35).empty());
}

TEST(AutocorrDegenerateTest, SingleElementSeriesIsDegenerate)
{
    const std::vector<double> one{42.0};
    const std::vector<double> corr = autocorrelogram(one, 8);
    for (const double r : corr)
        EXPECT_EQ(r, 0.0);
}

TEST(FindPeaksPropertyTest, MonotoneRampsHaveNoInteriorPeaks)
{
    // A strictly increasing correlogram has its maximum at the last
    // lag; findPeaks only reports local maxima with a higher left
    // neighbour and a non-lower right one, so ramps must yield
    // nothing except possibly the final plateau-free endpoint.
    std::vector<double> rising, falling;
    for (int i = 0; i <= 64; ++i) {
        rising.push_back(static_cast<double>(i) / 64.0);
        falling.push_back(1.0 - static_cast<double>(i) / 64.0);
    }
    for (const AutocorrPeak& p : findPeaks(rising, 0.0, 1))
        EXPECT_EQ(p.lag, rising.size() - 1);
    // A falling ramp's only candidate is lag 1 (lag 0 is excluded);
    // nothing beyond it may ever be reported.
    for (const AutocorrPeak& p : findPeaks(falling, 0.0, 1))
        EXPECT_LE(p.lag, 1u);
}

TEST(FindPeaksPropertyTest, SeededRandomSeriesPeaksAreLocalMaxima)
{
    Rng rng(2026);
    for (int round = 0; round < 20; ++round) {
        std::vector<double> corr;
        corr.push_back(1.0);
        for (int i = 0; i < 100; ++i)
            corr.push_back(rng.nextDouble() * 2.0 - 1.0);
        const double floor = rng.nextDouble() * 0.5;
        for (const AutocorrPeak& p : findPeaks(corr, floor, 1)) {
            ASSERT_GT(p.lag, 0u);
            EXPECT_GE(p.value, floor);
            EXPECT_DOUBLE_EQ(p.value, corr[p.lag]);
            EXPECT_GT(p.value, corr[p.lag - 1]);
            if (p.lag + 1 < corr.size())
                EXPECT_GE(p.value, corr[p.lag + 1]);
        }
    }
}

TEST(DiscretizerPropertyTest, RoundTripOnRandomHistograms)
{
    // toString and toFeatures are two renderings of the same
    // discretization: every character must decode back to the level
    // of its bin, and levels must be monotone in the counts.
    HistogramDiscretizer disc;
    Rng rng(77);
    for (int round = 0; round < 25; ++round) {
        Histogram hist(64);
        const std::uint64_t samples = 1 + rng.nextBelow(5000);
        for (std::uint64_t s = 0; s < samples; ++s)
            hist.addSample(rng.nextBelow(64));
        const std::string symbols = disc.toString(hist);
        const std::vector<double> features = disc.toFeatures(hist);
        ASSERT_EQ(symbols.size(), hist.numBins());
        ASSERT_EQ(features.size(), hist.numBins());
        for (std::size_t b = 0; b < hist.numBins(); ++b) {
            const unsigned level = disc.levelOf(hist.bin(b));
            EXPECT_EQ(symbols[b],
                      static_cast<char>('0' + level));
            EXPECT_EQ(features[b], static_cast<double>(level));
            // The log-scale level round-trips the count's magnitude:
            // 2^level - 1 <= count < 2^(level+1) - 1 below saturation.
            if (level + 1 < disc.params().alphabetSize) {
                EXPECT_GE(hist.bin(b) + 1, 1ull << level);
                EXPECT_LT(hist.bin(b) + 1, 1ull << (level + 1));
            }
        }
    }
}

TEST(DiscretizerPropertyTest, LevelsMonotoneInCount)
{
    HistogramDiscretizer disc;
    unsigned previous = 0;
    for (std::uint64_t count = 0; count < 4096; ++count) {
        const unsigned level = disc.levelOf(count);
        EXPECT_GE(level, previous);
        EXPECT_LT(level, disc.params().alphabetSize);
        previous = level;
    }
}
