#include <gtest/gtest.h>

#include "detect/event_density.hh"
#include "util/rng.hh"

namespace cchunter
{
namespace
{

TEST(EventDensityTest, UniformTrainGivesSingleDensity)
{
    EventTrain t(0, 1000);
    for (Tick tick = 0; tick < 1000; tick += 10)
        t.addEvent(tick);
    // 100 events, delta_t = 100 -> 10 windows of density 10.
    auto series = eventDensitySeries(t, 100);
    ASSERT_EQ(series.size(), 10u);
    for (auto d : series)
        EXPECT_EQ(d, 10u);
    Histogram h = buildEventDensityHistogram(t, 100, 32);
    EXPECT_EQ(h.bin(10), 10u);
    EXPECT_EQ(h.totalSamples(), 10u);
}

TEST(EventDensityTest, PartialLastWindowIncluded)
{
    EventTrain t(0, 250);
    t.addEvent(10);
    t.addEvent(220);
    auto series = eventDensitySeries(t, 100);
    // ceil(250/100) = 3 windows.
    ASSERT_EQ(series.size(), 3u);
    EXPECT_EQ(series[0], 1u);
    EXPECT_EQ(series[1], 0u);
    EXPECT_EQ(series[2], 1u);
}

TEST(EventDensityTest, EmptyTrainAllZeroWindows)
{
    EventTrain t(0, 500);
    Histogram h = buildEventDensityHistogram(t, 100, 16);
    EXPECT_EQ(h.bin(0), 5u);
    EXPECT_EQ(h.totalSamples(), 5u);
}

TEST(EventDensityTest, EventsOutsideWindowIgnored)
{
    EventTrain t;
    t.addEvent(10);
    t.addEvent(50);
    t.addEvent(500);
    t.setWindow(0, 100);
    auto series = eventDensitySeries(t, 50);
    ASSERT_EQ(series.size(), 2u);
    EXPECT_EQ(series[0], 1u);
    EXPECT_EQ(series[1], 1u);
}

TEST(EventDensityTest, ZeroDeltaTThrows)
{
    EventTrain t(0, 10);
    EXPECT_ANY_THROW(eventDensitySeries(t, 0));
}

TEST(EventDensityTest, BurstyTrainIsBimodal)
{
    // Alternating idle and burst windows: bursts of 20 events in every
    // other 100-tick interval.
    EventTrain t(0, 10000);
    for (Tick base = 0; base < 10000; base += 200)
        for (Tick i = 0; i < 20; ++i)
            t.addEvent(base + i * 5);
    Histogram h = buildEventDensityHistogram(t, 100, 64);
    // 50 windows with 20 events and 50 empty windows.
    EXPECT_EQ(h.bin(20), 50u);
    EXPECT_EQ(h.bin(0), 50u);
}

TEST(EventDensityTest, DensityOverflowClampsToLastBin)
{
    EventTrain t(0, 100);
    for (Tick tick = 0; tick < 100; ++tick)
        t.addEvent(tick);
    Histogram h = buildEventDensityHistogram(t, 100, 8);
    EXPECT_EQ(h.bin(7), 1u);
}

TEST(EventDensityTest, PoissonTrainMatchesPoissonShape)
{
    // Poisson arrivals: density histogram should be unimodal with the
    // peak near the rate * delta_t.
    Rng rng(99);
    EventTrain t(0, 1000000);
    Tick now = 0;
    while (true) {
        now += static_cast<Tick>(rng.nextExponential(100.0)) + 1;
        if (now >= 1000000)
            break;
        t.addEvent(now);
    }
    Histogram h = buildEventDensityHistogram(t, 500, 64);
    // Mean density should be near 5 (rate ~1/100 per tick * 500).
    EXPECT_NEAR(h.mean(), 5.0, 0.8);
    // Unimodal: peak within [3, 7].
    EXPECT_GE(h.peakBin(), 3u);
    EXPECT_LE(h.peakBin(), 7u);
}

} // namespace
} // namespace cchunter
