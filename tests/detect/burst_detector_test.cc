#include <gtest/gtest.h>

#include "detect/burst_detector.hh"
#include "detect/event_density.hh"
#include "util/rng.hh"

namespace cchunter
{
namespace
{

/** Histogram resembling a covert bus channel: idle mass at bin 0, a thin
 *  valley, and a burst cluster near bin 20. */
Histogram
channelLikeHistogram()
{
    Histogram h(128);
    h.addSample(0, 1648);
    h.addSample(1, 6);
    h.addSample(2, 2);
    h.addSample(18, 40);
    h.addSample(19, 120);
    h.addSample(20, 200);
    h.addSample(21, 110);
    h.addSample(22, 30);
    return h;
}

/** Histogram resembling benign traffic: geometric decay from bin 0. */
Histogram
benignHistogram()
{
    Histogram h(128);
    h.addSample(0, 2400);
    h.addSample(1, 70);
    h.addSample(2, 20);
    h.addSample(3, 7);
    h.addSample(4, 2);
    h.addSample(5, 1);
    return h;
}

TEST(BurstDetectorTest, DetectsChannelLikeBurst)
{
    BurstDetector d;
    BurstAnalysis a = d.analyze(channelLikeHistogram());
    EXPECT_TRUE(a.hasSecondDistribution);
    EXPECT_TRUE(a.significant);
    EXPECT_GT(a.likelihoodRatio, 0.9);
    EXPECT_EQ(a.burstPeakBin, 20u);
    EXPECT_GT(a.burstMean, 1.0);
    EXPECT_LT(a.nonBurstMean, 1.0);
}

TEST(BurstDetectorTest, BenignHistogramNotSignificant)
{
    BurstDetector d;
    BurstAnalysis a = d.analyze(benignHistogram());
    EXPECT_LT(a.likelihoodRatio, 0.5);
    EXPECT_FALSE(a.significant);
}

TEST(BurstDetectorTest, EmptyHistogramIsClean)
{
    BurstDetector d;
    Histogram h(128);
    BurstAnalysis a = d.analyze(h);
    EXPECT_FALSE(a.hasSecondDistribution);
    EXPECT_FALSE(a.significant);
    EXPECT_EQ(a.nonZeroSamples, 0u);
}

TEST(BurstDetectorTest, AllIdleHistogramIsClean)
{
    BurstDetector d;
    Histogram h(128);
    h.addSample(0, 5000);
    BurstAnalysis a = d.analyze(h);
    EXPECT_FALSE(a.significant);
    EXPECT_EQ(a.nonZeroSamples, 0u);
}

TEST(BurstDetectorTest, ThresholdDensityValleyRule)
{
    BurstDetector d;
    Histogram h(16);
    h.addSample(0, 1000);
    h.addSample(1, 50);
    h.addSample(2, 2);
    // bins 3-4 empty: the valley of the fitted curve
    h.addSample(5, 300);
    h.addSample(6, 400);
    h.addSample(7, 200);
    auto t = d.thresholdDensity(h);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 3u);
}

TEST(BurstDetectorTest, SawtoothDecayIsNotAValley)
{
    // A monotonically decaying contention histogram with an even/odd
    // sawtooth (as produced by paired contention episodes) must not be
    // split at an early artefact minimum: benign divider contention
    // would otherwise be flagged (false alarm).
    BurstDetector d;
    Histogram h(64);
    h.addSample(0, 1000000);
    const std::uint64_t evens[] = {9000, 8500, 8000, 7200, 6600,
                                   6200, 5500, 5100, 4400, 3900};
    const std::uint64_t odds[] = {2000, 1900, 1700, 1650, 1400,
                                  1100, 990, 870, 790, 710};
    for (int i = 0; i < 10; ++i) {
        h.addSample(2 + 2 * i, evens[i]);
        h.addSample(1 + 2 * i, odds[i]);
    }
    BurstAnalysis a = d.analyze(h);
    EXPECT_LT(a.likelihoodRatio, 0.5);
    EXPECT_FALSE(a.significant);
}

TEST(BurstDetectorTest, ThresholdFallsBackOnGentleSlope)
{
    BurstDetector d;
    // Strictly decreasing histogram (no interior local minimum).
    Histogram h(32);
    h.addSample(0, 1000);
    h.addSample(1, 300);
    h.addSample(2, 90);
    h.addSample(3, 27);
    h.addSample(4, 8);
    h.addSample(5, 2);
    auto t = d.thresholdDensity(h);
    ASSERT_TRUE(t.has_value());
    EXPECT_GT(*t, 1u);
    EXPECT_LT(*t, 12u);
}

TEST(BurstDetectorTest, ThresholdNulloptWhenOnlyBinZero)
{
    BurstDetector d;
    Histogram h(8);
    h.addSample(0, 10);
    EXPECT_FALSE(d.thresholdDensity(h).has_value());
}

TEST(BurstDetectorTest, WallToWallContentionIsAllBurst)
{
    // A quantum in which every delta-t window holds ~20 events (the
    // trojan signalled continuously): no non-burst distribution
    // exists and the whole histogram is the burst distribution.
    BurstDetector d;
    Histogram h(128);
    h.addSample(19, 30);
    h.addSample(20, 200);
    h.addSample(21, 20);
    BurstAnalysis a = d.analyze(h);
    EXPECT_EQ(a.thresholdBin, 19u);
    EXPECT_TRUE(a.significant);
    EXPECT_DOUBLE_EQ(a.likelihoodRatio, 1.0);
    EXPECT_EQ(a.burstPeakBin, 20u);
}

TEST(BurstDetectorTest, LikelihoodRatioExcludesBinZero)
{
    BurstDetector d;
    Histogram h(64);
    // Huge idle mass must not dilute the ratio.
    h.addSample(0, 1000000);
    h.addSample(1, 5);
    h.addSample(30, 95);
    BurstAnalysis a = d.analyze(h);
    EXPECT_TRUE(a.significant);
    EXPECT_NEAR(a.likelihoodRatio, 0.95, 0.01);
}

TEST(BurstDetectorTest, CustomThresholdApplied)
{
    BurstDetectorParams p;
    p.likelihoodThreshold = 0.99;
    BurstDetector d(p);
    BurstAnalysis a = d.analyze(channelLikeHistogram());
    // LR ~0.985 < 0.99.
    EXPECT_FALSE(a.significant);
}

TEST(BurstDetectorTest, InvalidParamsThrow)
{
    BurstDetectorParams p;
    p.likelihoodThreshold = 1.5;
    EXPECT_ANY_THROW(BurstDetector{p});
    BurstDetectorParams q;
    q.gentleSlopeFraction = 0.0;
    EXPECT_ANY_THROW(BurstDetector{q});
}

TEST(BurstDetectorTest, BurstExtentReported)
{
    BurstDetector d;
    BurstAnalysis a = d.analyze(channelLikeHistogram());
    EXPECT_LE(a.burstFirstBin, 18u);
    EXPECT_EQ(a.burstLastBin, 22u);
    EXPECT_EQ(a.burstSamples, 40u + 120 + 200 + 110 + 30);
}

/** Property sweep: burstiness detected across burst densities. */
class BurstSweepTest : public ::testing::TestWithParam<int>
{
};

TEST_P(BurstSweepTest, DetectsBurstAtDensity)
{
    const int density = GetParam();
    Rng rng(1000 + density);
    EventTrain t(0, 1000000);
    // 40 bursts of `density` events, idle elsewhere; small noise.
    Tick now = 0;
    for (int b = 0; b < 40; ++b) {
        now = b * 25000;
        for (int i = 0; i < density; ++i)
            t.addEvent(now + static_cast<Tick>(i) * 3);
    }
    Histogram h = buildEventDensityHistogram(t, 1000, 128);
    BurstDetector d;
    BurstAnalysis a = d.analyze(h);
    EXPECT_TRUE(a.significant) << "density=" << density;
    EXPECT_GT(a.likelihoodRatio, 0.9) << "density=" << density;
    EXPECT_NEAR(static_cast<double>(a.burstPeakBin), density, 2.0);
}

INSTANTIATE_TEST_SUITE_P(Densities, BurstSweepTest,
                         ::testing::Values(5, 10, 20, 40, 80, 120));

} // namespace
} // namespace cchunter
