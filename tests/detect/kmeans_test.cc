#include <gtest/gtest.h>

#include <set>

#include "detect/kmeans.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "util/thread_pool.hh"

namespace cchunter
{
namespace
{

std::vector<std::vector<double>>
twoBlobs(std::size_t per_blob, double separation, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<double>> pts;
    for (std::size_t i = 0; i < per_blob; ++i)
        pts.push_back({rng.nextGaussian(0.0, 0.5),
                       rng.nextGaussian(0.0, 0.5)});
    for (std::size_t i = 0; i < per_blob; ++i)
        pts.push_back({rng.nextGaussian(separation, 0.5),
                       rng.nextGaussian(separation, 0.5)});
    return pts;
}

TEST(KMeansTest, SeparatesTwoBlobs)
{
    auto pts = twoBlobs(50, 10.0, 1);
    KMeansParams p;
    p.k = 2;
    auto r = kmeans(pts, p);
    ASSERT_EQ(r.centroids.size(), 2u);
    // All points in the first half share a cluster; second half the other.
    const std::size_t c0 = r.assignments[0];
    for (std::size_t i = 0; i < 50; ++i)
        EXPECT_EQ(r.assignments[i], c0);
    for (std::size_t i = 50; i < 100; ++i)
        EXPECT_NE(r.assignments[i], c0);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters)
{
    auto pts = twoBlobs(40, 6.0, 2);
    KMeansParams p1, p4;
    p1.k = 1;
    p4.k = 4;
    const auto r1 = kmeans(pts, p1);
    const auto r4 = kmeans(pts, p4);
    EXPECT_LT(r4.inertia, r1.inertia);
}

TEST(KMeansTest, ClusterSizesSumToN)
{
    auto pts = twoBlobs(30, 5.0, 3);
    KMeansParams p;
    p.k = 3;
    auto r = kmeans(pts, p);
    std::size_t total = 0;
    for (auto s : r.clusterSizes)
        total += s;
    EXPECT_EQ(total, pts.size());
}

TEST(KMeansTest, KLargerThanPointsClamped)
{
    std::vector<std::vector<double>> pts{{0.0}, {1.0}};
    KMeansParams p;
    p.k = 10;
    auto r = kmeans(pts, p);
    EXPECT_LE(r.centroids.size(), 2u);
}

TEST(KMeansTest, EmptyInputReturnsEmptyResult)
{
    KMeansParams p;
    auto r = kmeans({}, p);
    EXPECT_TRUE(r.centroids.empty());
    EXPECT_TRUE(r.assignments.empty());
}

TEST(KMeansTest, IdenticalPointsSingleEffectiveCluster)
{
    std::vector<std::vector<double>> pts(20, {3.0, 3.0});
    KMeansParams p;
    p.k = 3;
    auto r = kmeans(pts, p);
    EXPECT_DOUBLE_EQ(r.inertia, 0.0);
}

TEST(KMeansTest, DeterministicForSeed)
{
    auto pts = twoBlobs(25, 8.0, 4);
    KMeansParams p;
    p.k = 2;
    p.seed = 77;
    auto a = kmeans(pts, p);
    auto b = kmeans(pts, p);
    EXPECT_EQ(a.assignments, b.assignments);
}

TEST(KMeansTest, MismatchedDimensionsThrow)
{
    std::vector<std::vector<double>> pts{{1.0, 2.0}, {1.0}};
    KMeansParams p;
    EXPECT_ANY_THROW(kmeans(pts, p));
}

TEST(KMeansAutoTest, PicksTwoForTwoBlobs)
{
    auto pts = twoBlobs(40, 12.0, 5);
    auto r = kmeansAuto(pts, 6, 9);
    EXPECT_EQ(r.centroids.size(), 2u);
}

TEST(KMeansAutoTest, SinglePointFallsBack)
{
    std::vector<std::vector<double>> pts{{1.0, 1.0}};
    auto r = kmeansAuto(pts, 6);
    EXPECT_EQ(r.centroids.size(), 1u);
    EXPECT_EQ(r.assignments[0], 0u);
}

TEST(KMeansAutoTest, AllIdenticalFallsBackToOne)
{
    std::vector<std::vector<double>> pts(10, {2.0});
    auto r = kmeansAuto(pts, 6);
    EXPECT_EQ(r.centroids.size(), 1u);
}

TEST(KMeansTest, EarlyExitConvergesBeforeIterationCap)
{
    auto pts = twoBlobs(50, 20.0, 8);
    KMeansParams p;
    p.k = 2;
    p.maxIterations = 64;
    auto r = kmeans(pts, p);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(r.iterations, p.maxIterations);
}

TEST(KMeansTest, RestartsNeverWorsenInertia)
{
    auto pts = twoBlobs(60, 4.0, 9);
    KMeansParams one;
    one.k = 4;
    one.seed = 5;
    KMeansParams many = one;
    many.restarts = 8;
    const auto single = kmeans(pts, one);
    const auto multi = kmeans(pts, many);
    // Restart 0 replays the single run, so the best of 8 restarts can
    // only match or beat it.
    EXPECT_LE(multi.inertia, single.inertia);
}

TEST(KMeansTest, SingleRestartUnchangedByRestartsField)
{
    // restarts = 1 must reproduce the historical single-run behaviour.
    auto pts = twoBlobs(30, 6.0, 10);
    KMeansParams p;
    p.k = 3;
    p.seed = 21;
    KMeansParams q = p;
    q.restarts = 1;
    const auto a = kmeans(pts, p);
    const auto b = kmeans(pts, q);
    EXPECT_EQ(a.assignments, b.assignments);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, ParallelRestartsBitIdenticalToSerial)
{
    auto pts = twoBlobs(80, 3.0, 11);
    KMeansParams p;
    p.k = 5;
    p.seed = 33;
    p.restarts = 8;
    const auto serial = kmeans(pts, p);
    ThreadPool pool(4);
    for (int rep = 0; rep < 3; ++rep) {
        const auto parallel = kmeans(pts, p, &pool);
        EXPECT_EQ(parallel.assignments, serial.assignments);
        EXPECT_EQ(parallel.centroids, serial.centroids);
        EXPECT_EQ(parallel.clusterSizes, serial.clusterSizes);
        EXPECT_DOUBLE_EQ(parallel.inertia, serial.inertia);
        EXPECT_EQ(parallel.iterations, serial.iterations);
    }
}

TEST(KMeansAutoTest, ParallelSearchBitIdenticalToSerial)
{
    auto pts = twoBlobs(40, 8.0, 12);
    const auto serial = kmeansAuto(pts, 6, 17);
    ThreadPool pool(4);
    const auto parallel = kmeansAuto(pts, 6, 17, &pool);
    EXPECT_EQ(parallel.assignments, serial.assignments);
    EXPECT_EQ(parallel.centroids, serial.centroids);
    EXPECT_DOUBLE_EQ(parallel.inertia, serial.inertia);
}

TEST(SilhouetteTest, WellSeparatedBlobsScoreHigh)
{
    auto pts = twoBlobs(30, 20.0, 6);
    KMeansParams p;
    p.k = 2;
    auto r = kmeans(pts, p);
    EXPECT_GT(silhouetteScore(pts, r), 0.8);
}

TEST(SilhouetteTest, SingleClusterScoresZero)
{
    auto pts = twoBlobs(10, 2.0, 7);
    KMeansParams p;
    p.k = 1;
    auto r = kmeans(pts, p);
    EXPECT_DOUBLE_EQ(silhouetteScore(pts, r), 0.0);
}

TEST(SquaredDistanceTest, Basics)
{
    EXPECT_DOUBLE_EQ(squaredDistance({0.0, 0.0}, {3.0, 4.0}), 25.0);
    EXPECT_ANY_THROW(squaredDistance({1.0}, {1.0, 2.0}));
}

TEST(KMeansSimdTest, ClusteringBitIdenticalAcrossBackends)
{
    // The distance kernel pins one reduction tree in both backends, so
    // the whole clustering — seeding, assignment sweeps, inertia and
    // silhouette — must not depend on the SIMD toggle.
    const bool saved = simdEnabled();
    auto pts = twoBlobs(60, 4.0, 21);
    // Odd dimensionality exercises the kernel's tail handling.
    for (auto& p : pts)
        p.push_back(p[0] - p[1]);

    setSimdEnabled(true);
    const auto vec = kmeansAuto(pts, 5, 22);
    const double vecSilhouette = silhouetteScore(pts, vec);
    setSimdEnabled(false);
    const auto scalar = kmeansAuto(pts, 5, 22);
    const double scalarSilhouette = silhouetteScore(pts, scalar);
    setSimdEnabled(saved);

    EXPECT_EQ(vec.assignments, scalar.assignments);
    EXPECT_EQ(vec.centroids, scalar.centroids);
    EXPECT_EQ(vec.inertia, scalar.inertia);
    EXPECT_EQ(vecSilhouette, scalarSilhouette);
}

} // namespace
} // namespace cchunter
