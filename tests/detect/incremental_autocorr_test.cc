/**
 * @file
 * Incremental sliding-window autocorrelation tests.
 *
 * The maintainer's correlogram must agree with the direct reference
 * (autocorrelogramNaive over the current window contents) within 1e-9
 * at every lag, across randomized append/evict schedules — window
 * filling, wrap-around, long steady-state streaming — for both binary
 * 0/1 label series (the production input) and arbitrary real series.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "detect/autocorrelation.hh"
#include "detect/incremental_autocorr.hh"
#include "util/rng.hh"

namespace cchunter
{
namespace
{

std::vector<double>
windowOf(const std::deque<double>& window)
{
    return {window.begin(), window.end()};
}

void
expectMatchesReference(const IncrementalAutocorrelation& inc,
                       const std::deque<double>& window,
                       std::size_t max_lag, const char* where)
{
    const auto reference =
        autocorrelogramNaive(windowOf(window), max_lag);
    const auto actual = inc.correlogram(max_lag);
    ASSERT_EQ(actual.size(), reference.size()) << where;
    for (std::size_t lag = 0; lag < actual.size(); ++lag)
        EXPECT_NEAR(actual[lag], reference[lag], 1e-9)
            << where << " lag=" << lag << " n=" << window.size();
}

TEST(IncrementalAutocorrTest, RejectsDegenerateConfiguration)
{
    EXPECT_ANY_THROW(IncrementalAutocorrelation(1, 16));
    EXPECT_ANY_THROW(IncrementalAutocorrelation(8, 0));
}

TEST(IncrementalAutocorrTest, QueryBeyondMaintainedLagThrows)
{
    IncrementalAutocorrelation inc(8, 16);
    inc.push(1.0);
    EXPECT_ANY_THROW(inc.correlogram(9));
}

TEST(IncrementalAutocorrTest, TinyAndDegenerateWindows)
{
    IncrementalAutocorrelation inc(8, 16);
    // Empty and single-sample windows are all-zero by definition.
    for (double v : inc.correlogram(8))
        EXPECT_DOUBLE_EQ(v, 0.0);
    inc.push(1.0);
    for (double v : inc.correlogram(8))
        EXPECT_DOUBLE_EQ(v, 0.0);
    // A constant window has zero variance: exactly zero, not noise —
    // the expanded denominator must cancel exactly for 0/1 labels.
    for (int i = 0; i < 10; ++i)
        inc.push(1.0);
    for (double v : inc.correlogram(8))
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(IncrementalAutocorrTest, MatchesReferenceWhileFilling)
{
    const std::size_t max_lag = 12;
    IncrementalAutocorrelation inc(max_lag, 64);
    std::deque<double> window;
    Rng rng(31);
    for (int i = 0; i < 64; ++i) {
        const double x = rng.nextDouble() < 0.5 ? 0.0 : 1.0;
        inc.push(x);
        window.push_back(x);
        expectMatchesReference(inc, window, max_lag, "filling");
    }
    EXPECT_EQ(inc.size(), 64u);
    EXPECT_EQ(inc.evictions(), 0u);
}

TEST(IncrementalAutocorrTest, MatchesReferenceAcrossEvictions)
{
    const std::size_t max_lag = 16;
    const std::size_t capacity = 48;
    IncrementalAutocorrelation inc(max_lag, capacity);
    std::deque<double> window;
    Rng rng(32);
    for (int i = 0; i < 400; ++i) {
        const double x = rng.nextDouble() < 0.3 ? 0.0 : 1.0;
        inc.push(x);
        window.push_back(x);
        if (window.size() > capacity)
            window.pop_front();
        if (i % 7 == 0)
            expectMatchesReference(inc, window, max_lag, "streaming");
    }
    EXPECT_EQ(inc.size(), capacity);
    EXPECT_EQ(inc.evictions(), 400u - capacity);
}

TEST(IncrementalAutocorrTest, MatchesReferenceOnGaussianSeries)
{
    // Real-valued series exercise the non-exact arithmetic; the
    // incremental sums must still track the reference within 1e-9
    // after hundreds of evictions.
    const std::size_t max_lag = 10;
    const std::size_t capacity = 32;
    IncrementalAutocorrelation inc(max_lag, capacity);
    std::deque<double> window;
    Rng rng(33);
    for (int i = 0; i < 500; ++i) {
        const double x = rng.nextGaussian(0.0, 1.0);
        inc.push(x);
        window.push_back(x);
        if (window.size() > capacity)
            window.pop_front();
        if (i % 11 == 0)
            expectMatchesReference(inc, window, max_lag, "gaussian");
    }
}

TEST(IncrementalAutocorrTest, RandomizedSchedulesAndLagSubranges)
{
    // Randomized capacities and query lags: every (capacity, lag)
    // combination must agree with the reference over the same window.
    Rng rng(34);
    for (int round = 0; round < 8; ++round) {
        const std::size_t max_lag = 2 + (rng.next() % 20);
        const std::size_t capacity =
            max_lag + 1 + (rng.next() % 50);
        IncrementalAutocorrelation inc(max_lag, capacity);
        std::deque<double> window;
        const int pushes = 30 + static_cast<int>(rng.next() % 200);
        for (int i = 0; i < pushes; ++i) {
            const double x = rng.nextDouble() < 0.5 ? 0.0 : 1.0;
            inc.push(x);
            window.push_back(x);
            if (window.size() > capacity)
                window.pop_front();
        }
        // Querying a smaller lag than maintained must also agree.
        const std::size_t query = 2 + (rng.next() % (max_lag - 1));
        const auto reference =
            autocorrelogramNaive(windowOf(window), query);
        const auto actual = inc.correlogram(query);
        ASSERT_EQ(actual.size(), reference.size());
        for (std::size_t lag = 0; lag < actual.size(); ++lag)
            EXPECT_NEAR(actual[lag], reference[lag], 1e-9)
                << "round=" << round << " lag=" << lag;
    }
}

TEST(IncrementalAutocorrTest, CorrelogramQueryLeavesStateIntact)
{
    IncrementalAutocorrelation inc(8, 32);
    Rng rng(35);
    for (int i = 0; i < 40; ++i)
        inc.push(rng.nextDouble() < 0.5 ? 0.0 : 1.0);
    const auto first = inc.correlogram(8);
    const auto second = inc.correlogram(8);
    EXPECT_EQ(first, second);
    // Reusing a caller buffer must fully overwrite stale contents.
    std::vector<double> out(3, 99.0);
    inc.correlogram(8, out);
    EXPECT_EQ(out, first);
}

} // namespace
} // namespace cchunter
