#include <gtest/gtest.h>

#include "detect/oscillation_detector.hh"
#include "util/rng.hh"

namespace cchunter
{
namespace
{

std::vector<double>
squareWave(std::size_t period, std::size_t cycles, double noise = 0.0,
           std::uint64_t seed = 1)
{
    Rng rng(seed);
    std::vector<double> s;
    s.reserve(period * cycles);
    for (std::size_t c = 0; c < cycles; ++c)
        for (std::size_t i = 0; i < period; ++i) {
            double v = i < period / 2 ? 1.0 : 0.0;
            if (noise > 0.0 && rng.nextBool(noise))
                v = 1.0 - v; // flip label (random interfering conflict)
            s.push_back(v);
        }
    return s;
}

TEST(OscillationDetectorTest, DetectsCleanSquareWave)
{
    OscillationDetector d;
    auto a = d.analyze(squareWave(128, 40));
    EXPECT_TRUE(a.oscillating);
    EXPECT_NEAR(static_cast<double>(a.dominantLag), 128.0, 4.0);
    EXPECT_GT(a.dominantValue, 0.9);
}

TEST(OscillationDetectorTest, DetectsSinglePeakLongPeriod)
{
    // Period 512 with maxLag 1000: only one peak fits; the deep trough
    // near lag 256 confirms the square-wave signature (paper figure 8).
    OscillationDetector d;
    auto a = d.analyze(squareWave(512, 12));
    EXPECT_TRUE(a.oscillating);
    EXPECT_NEAR(static_cast<double>(a.dominantLag), 512.0, 8.0);
    EXPECT_LT(a.deepestTrough, -0.5);
}

TEST(OscillationDetectorTest, ToleratesLabelNoise)
{
    OscillationDetector d;
    auto a = d.analyze(squareWave(128, 40, 0.05, 7));
    EXPECT_TRUE(a.oscillating);
    EXPECT_NEAR(static_cast<double>(a.dominantLag), 128.0, 8.0);
}

TEST(OscillationDetectorTest, RandomLabelsNotOscillating)
{
    Rng rng(3);
    std::vector<double> s;
    for (int i = 0; i < 8000; ++i)
        s.push_back(rng.nextBool() ? 1.0 : 0.0);
    OscillationDetector d;
    auto a = d.analyze(s);
    EXPECT_FALSE(a.oscillating);
}

TEST(OscillationDetectorTest, ConstantLabelsNotOscillating)
{
    std::vector<double> s(4000, 1.0);
    OscillationDetector d;
    auto a = d.analyze(s);
    EXPECT_FALSE(a.oscillating);
    EXPECT_TRUE(a.peaks.empty());
}

TEST(OscillationDetectorTest, ShortSeriesRejected)
{
    OscillationDetector d;
    auto a = d.analyze(squareWave(8, 4)); // 32 events < minSeriesLength
    EXPECT_FALSE(a.oscillating);
}

TEST(OscillationDetectorTest, BriefLocalPeriodicityRejected)
{
    // Mimics the webserver false-alarm case: a short periodic episode
    // inside an otherwise aperiodic train (paper section VI-D).
    Rng rng(9);
    std::vector<double> s;
    for (int i = 0; i < 600; ++i)
        s.push_back(rng.nextBool(0.3) ? 1.0 : 0.0);
    for (int rep = 0; rep < 3; ++rep)
        for (int i = 0; i < 60; ++i)
            s.push_back(i < 30 ? 1.0 : 0.0);
    for (int i = 0; i < 3000; ++i)
        s.push_back(rng.nextBool(0.3) ? 1.0 : 0.0);
    OscillationDetector d;
    auto a = d.analyze(s);
    EXPECT_FALSE(a.oscillating);
}

TEST(OscillationDetectorTest, ReportsR1)
{
    OscillationDetector d;
    auto a = d.analyze(squareWave(100, 40));
    // Square wave: adjacent samples nearly always equal -> r1 high.
    EXPECT_GT(a.r1, 0.9);
}

TEST(OscillationDetectorTest, InvalidParamsThrow)
{
    OscillationParams p;
    p.maxLag = 1;
    EXPECT_ANY_THROW(OscillationDetector{p});
}

TEST(OscillationDetectorTest, CorrelogramSizeIsMaxLagPlusOne)
{
    OscillationParams p;
    p.maxLag = 100;
    OscillationDetector d(p);
    auto a = d.analyze(squareWave(20, 30));
    EXPECT_EQ(a.correlogram.size(), 101u);
}

TEST(OscillationDetectorTest, PeaksMatchPerLagReference)
{
    // Regression for the single-pass correlogram wiring: the peaks the
    // detector reports must equal those found on a correlogram built
    // lag by lag with autocorrelationAt (the old per-lag evaluation),
    // including at FFT-path series lengths.
    for (std::size_t cycles : {40u, 200u}) {
        const auto s = squareWave(96, cycles, 0.03, 5);
        OscillationDetector d;
        const auto a = d.analyze(s);

        std::vector<double> reference;
        reference.reserve(d.params().maxLag + 1);
        for (std::size_t lag = 0; lag <= d.params().maxLag; ++lag)
            reference.push_back(autocorrelationAt(s, lag));
        const auto expected =
            findPeaks(reference, d.params().peakThreshold,
                      d.params().minPeakSeparation);

        ASSERT_EQ(a.peaks.size(), expected.size())
            << "cycles=" << cycles;
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_EQ(a.peaks[i].lag, expected[i].lag);
            EXPECT_NEAR(a.peaks[i].value, expected[i].value, 1e-9);
        }
    }
}

/** Sweep mirroring figure 13: the dominant lag tracks the set count. */
class SetCountSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SetCountSweep, DominantLagTracksSets)
{
    const std::size_t sets = GetParam();
    OscillationDetector d;
    auto a = d.analyze(squareWave(sets, 6000 / sets + 4, 0.02, sets));
    EXPECT_TRUE(a.oscillating) << "sets=" << sets;
    EXPECT_NEAR(static_cast<double>(a.dominantLag),
                static_cast<double>(sets),
                static_cast<double>(sets) * 0.1);
}

INSTANTIATE_TEST_SUITE_P(SetCounts, SetCountSweep,
                         ::testing::Values(64, 128, 256, 512));

} // namespace
} // namespace cchunter
