/**
 * @file
 * Property tests of the second-moment indicator backend: the
 * invariances that make it robust to evasive pacing (time-shift and
 * re-ordering, idle-gap dilution), the monotone responses the arms
 * race relies on (density, spread, run length), and exact decision
 * agreement with the classic CC-Hunter backend on its own pinned
 * non-evasive fixtures.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "detect/detector.hh"
#include "detect/indicator2.hh"
#include "util/rng.hh"

namespace cchunter
{
namespace
{

// The classic detector's own fixtures (tests/detect/detector_test.cc),
// bus-scale: the agreement properties assert both backends reach the
// same verdict on the corpus the classic backend was calibrated on.

Histogram
burstyQuantum(Rng& rng)
{
    Histogram h(128);
    h.addSample(0, 1600 + rng.nextBelow(100));
    h.addSample(1, rng.nextBelow(4));
    h.addSample(20, 200 + rng.nextBelow(50));
    h.addSample(21, 100 + rng.nextBelow(20));
    return h;
}

Histogram
benignQuantum(Rng& rng)
{
    Histogram h(128);
    h.addSample(0, 2300 + rng.nextBelow(100));
    h.addSample(1, 50 + rng.nextBelow(20));
    h.addSample(2, 12 + rng.nextBelow(8));
    h.addSample(3, rng.nextBelow(5));
    return h;
}

std::vector<double>
squareWave(std::size_t period, std::size_t cycles)
{
    std::vector<double> s;
    for (std::size_t c = 0; c < cycles; ++c)
        for (std::size_t i = 0; i < period; ++i)
            s.push_back(i < period / 2 ? 1.0 : 0.0);
    return s;
}

/** Bus-scale params: the unit registry's calibration of the bus. */
Indicator2Params
busParams()
{
    Indicator2Params params;
    params.contentionScale = 50.0;
    return params;
}

std::vector<Histogram>
burstyWindow(std::uint64_t seed, std::size_t quanta = 8)
{
    Rng rng(seed);
    std::vector<Histogram> window;
    for (std::size_t i = 0; i < quanta; ++i)
        window.push_back(burstyQuantum(rng));
    return window;
}

TEST(Indicator2PropertyTest, ContentionInvariantUnderQuantumOrder)
{
    // Pure time-shift resistance: the statistic reads the merged
    // density histogram, so shuffling WHEN the bursts happened (the
    // randomized-gaps evasion) cannot move the score.
    const Indicator2 indicator(busParams());
    std::vector<Histogram> window = burstyWindow(7);
    const double before =
        indicator.scoreContention(window).score;
    std::reverse(window.begin(), window.end());
    EXPECT_DOUBLE_EQ(indicator.scoreContention(window).score, before);
    std::rotate(window.begin(), window.begin() + 3, window.end());
    EXPECT_DOUBLE_EQ(indicator.scoreContention(window).score, before);
}

TEST(Indicator2PropertyTest, ContentionInvariantUnderIdleDilution)
{
    // Low-and-slow resistance: interleaving arbitrarily many idle
    // quanta (all mass in bin 0) leaves E[d² | d > 0] untouched.
    const Indicator2 indicator(busParams());
    std::vector<Histogram> window = burstyWindow(11, 2);
    const Indicator2Result before =
        indicator.scoreContention(window);
    Histogram idle(128);
    idle.addSample(0, 2000);
    for (int i = 0; i < 6; ++i)
        window.insert(window.begin() + 1, idle);
    const Indicator2Result after =
        indicator.scoreContention(window);
    EXPECT_DOUBLE_EQ(after.score, before.score);
    EXPECT_EQ(after.samples, before.samples);
}

TEST(Indicator2PropertyTest, ContentionMonotoneInBurstDensity)
{
    // Packing the same number of busy windows harder must only raise
    // the statistic: the sender cannot hide by sending harder.
    const Indicator2 indicator(busParams());
    double last = 0.0;
    for (const std::size_t density : {4u, 8u, 16u, 32u, 64u}) {
        Histogram h(128);
        h.addSample(0, 1000);
        h.addSample(density, 50);
        const double score =
            indicator.scoreContention(std::vector<Histogram>{h})
                .score;
        EXPECT_GT(score, last) << "density " << density;
        last = score;
    }
}

TEST(Indicator2PropertyTest, ContentionRisesUnderMeanPreservingSpread)
{
    // The duty-cycle response: jittering a fixed event budget into
    // alternately harder and softer windows preserves the mean density
    // but raises the second moment, so the score must not drop.
    const Indicator2 indicator(busParams());
    Histogram even(128);
    even.addSample(0, 1000);
    even.addSample(20, 100);
    Histogram jittered(128);
    jittered.addSample(0, 1000);
    jittered.addSample(10, 50); // same total mass 20·100 = 2000,
    jittered.addSample(30, 50); // spread ±10 around the mean
    const double evenScore =
        indicator.scoreContention(std::vector<Histogram>{even}).score;
    const double jitteredScore =
        indicator.scoreContention(std::vector<Histogram>{jittered})
            .score;
    EXPECT_GT(jitteredScore, evenScore);
}

TEST(Indicator2PropertyTest, OscillationInvariantUnderReversalAndFlip)
{
    // Run lengths are label-symmetric and direction-symmetric: neither
    // playing the series backwards nor swapping hit/miss labels can
    // change the verdict.
    const Indicator2 indicator;
    std::vector<double> series = squareWave(128, 40);
    const double before =
        indicator.scoreOscillation(series).score;
    std::reverse(series.begin(), series.end());
    EXPECT_DOUBLE_EQ(indicator.scoreOscillation(series).score, before);
    for (double& v : series)
        v = 1.0 - v;
    EXPECT_DOUBLE_EQ(indicator.scoreOscillation(series).score, before);
}

TEST(Indicator2PropertyTest, OscillationMonotoneInRunLength)
{
    // Longer eviction groups (slower, steadier signalling) must score
    // at least as high — low-and-slow stretching cannot help there.
    const Indicator2 indicator;
    double last = 0.0;
    for (const std::size_t period : {8u, 16u, 32u, 64u, 128u}) {
        const double score =
            indicator.scoreOscillation(squareWave(period, 5120 / period))
                .score;
        EXPECT_GT(score, last) << "period " << period;
        last = score;
    }
}

TEST(Indicator2PropertyTest, OscillationRobustToHeavyTailedRuns)
{
    // A self-thrashing workload's signature: a few enormous one-sided
    // runs over a sea of singletons.  A mean-based second moment is
    // dominated by the big runs; the median must stay on the floor.
    Rng rng(3);
    std::vector<double> series;
    for (const std::size_t big : {6987u, 1065u, 203u}) {
        for (std::size_t i = 0; i < big; ++i)
            series.push_back(0.0);
        series.push_back(1.0);
    }
    for (std::size_t i = 0; i < 400; ++i)
        series.push_back(rng.nextBelow(8) == 0 ? 1.0 : 0.0);
    const Indicator2 indicator;
    EXPECT_LT(indicator.scoreOscillation(series).score, 0.1);
}

TEST(Indicator2PropertyTest, AgreesWithClassicOnContentionFixtures)
{
    // Pinned non-evasive fixtures: both backends must call the bursty
    // window covert and the benign window clean at the 0.5 cut-off.
    const CCHunter hunter;
    const Indicator2 indicator(busParams());
    Rng rng(1);
    std::vector<Histogram> covert;
    for (int i = 0; i < 24; ++i)
        covert.push_back(burstyQuantum(rng));
    EXPECT_TRUE(hunter.analyzeContention(covert).detected);
    EXPECT_TRUE(
        indicator.scoreContention(covert).detectedAt(0.5));

    Rng rng2(2);
    std::vector<Histogram> benign;
    for (int i = 0; i < 24; ++i)
        benign.push_back(benignQuantum(rng2));
    EXPECT_FALSE(hunter.analyzeContention(benign).detected);
    EXPECT_FALSE(
        indicator.scoreContention(benign).detectedAt(0.5));
}

TEST(Indicator2PropertyTest, AgreesWithClassicOnOscillationFixtures)
{
    const CCHunter hunter;
    const Indicator2 indicator;
    const std::vector<double> covert = squareWave(128, 40);
    EXPECT_TRUE(hunter.analyzeOscillation(covert).detected);
    EXPECT_TRUE(indicator.scoreOscillation(covert).detectedAt(0.5));

    Rng rng(9);
    std::vector<double> noise;
    for (int i = 0; i < 5120; ++i)
        noise.push_back(rng.nextBelow(2) ? 1.0 : 0.0);
    EXPECT_FALSE(hunter.analyzeOscillation(noise).detected);
    EXPECT_FALSE(indicator.scoreOscillation(noise).detectedAt(0.5));
}

} // namespace
} // namespace cchunter
