#include <gtest/gtest.h>

#include <cmath>

#include "detect/autocorrelation.hh"
#include "util/rng.hh"

namespace cchunter
{
namespace
{

/** Square wave with `period` (half ones, half zeros), `cycles` repeats. */
std::vector<double>
squareWave(std::size_t period, std::size_t cycles)
{
    std::vector<double> s;
    s.reserve(period * cycles);
    for (std::size_t c = 0; c < cycles; ++c) {
        for (std::size_t i = 0; i < period; ++i)
            s.push_back(i < period / 2 ? 1.0 : 0.0);
    }
    return s;
}

TEST(AutocorrelationTest, LagZeroIsOne)
{
    std::vector<double> s{1, 2, 3, 4, 5, 4, 3, 2};
    EXPECT_NEAR(autocorrelationAt(s, 0), 1.0, 1e-12);
}

TEST(AutocorrelationTest, ConstantSeriesIsZero)
{
    std::vector<double> s(100, 5.0);
    EXPECT_DOUBLE_EQ(autocorrelationAt(s, 1), 0.0);
    EXPECT_DOUBLE_EQ(autocorrelationAt(s, 5), 0.0);
}

TEST(AutocorrelationTest, LagBeyondLengthIsZero)
{
    std::vector<double> s{1, 2, 3};
    EXPECT_DOUBLE_EQ(autocorrelationAt(s, 3), 0.0);
    EXPECT_DOUBLE_EQ(autocorrelationAt(s, 100), 0.0);
}

TEST(AutocorrelationTest, SquareWavePeaksAtPeriod)
{
    auto s = squareWave(64, 16);
    const double at_period = autocorrelationAt(s, 64);
    const double at_half = autocorrelationAt(s, 32);
    EXPECT_GT(at_period, 0.85);
    EXPECT_LT(at_half, -0.75);
}

TEST(AutocorrelationTest, WhiteNoiseIsUncorrelated)
{
    Rng rng(1);
    std::vector<double> s;
    for (int i = 0; i < 5000; ++i)
        s.push_back(rng.nextDouble());
    for (std::size_t lag : {1u, 7u, 50u})
        EXPECT_LT(std::abs(autocorrelationAt(s, lag)), 0.05);
}

TEST(AutocorrelationTest, AlternatingSeriesNegativeAtOddLags)
{
    std::vector<double> s;
    for (int i = 0; i < 200; ++i)
        s.push_back(i % 2 ? 1.0 : 0.0);
    EXPECT_LT(autocorrelationAt(s, 1), -0.9);
    EXPECT_GT(autocorrelationAt(s, 2), 0.9);
}

TEST(AutocorrelogramTest, MatchesPointwiseComputation)
{
    Rng rng(2);
    std::vector<double> s;
    for (int i = 0; i < 300; ++i)
        s.push_back(rng.nextGaussian(0.0, 1.0) +
                    std::sin(i * 2.0 * M_PI / 25.0));
    auto gram = autocorrelogram(s, 60);
    ASSERT_EQ(gram.size(), 61u);
    for (std::size_t lag = 0; lag <= 60; ++lag)
        EXPECT_NEAR(gram[lag], autocorrelationAt(s, lag), 1e-12);
}

TEST(AutocorrelogramTest, DegenerateSeriesAllZero)
{
    auto gram = autocorrelogram({1.0}, 10);
    ASSERT_EQ(gram.size(), 11u);
    for (double v : gram)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FindPeaksTest, FindsSquareWavePeaks)
{
    auto s = squareWave(50, 30);
    auto gram = autocorrelogram(s, 300);
    auto peaks = findPeaks(gram, 0.5, 8);
    // Peaks at 50, 100, 150, 200, 250, 300 (some boundary effects).
    ASSERT_GE(peaks.size(), 4u);
    EXPECT_NEAR(static_cast<double>(peaks[0].lag), 50.0, 2.0);
    EXPECT_NEAR(static_cast<double>(peaks[1].lag), 100.0, 2.0);
}

TEST(FindPeaksTest, RespectsMinValue)
{
    auto s = squareWave(50, 30);
    auto gram = autocorrelogram(s, 300);
    auto none = findPeaks(gram, 1.1, 8);
    EXPECT_TRUE(none.empty());
}

TEST(FindPeaksTest, MinSeparationMergesNearbyPeaks)
{
    // Construct a correlogram with two local maxima 3 lags apart.
    std::vector<double> gram{0.0, 0.2, 0.8, 0.3, 0.9, 0.1, 0.0};
    auto peaks = findPeaks(gram, 0.5, 8);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].lag, 4u);
    EXPECT_DOUBLE_EQ(peaks[0].value, 0.9);
}

TEST(FindPeaksTest, EmptyCorrelogram)
{
    EXPECT_TRUE(findPeaks({}, 0.1).empty());
}

/** Period sweep mirroring the paper's cache-set sensitivity study. */
class PeriodSweepTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PeriodSweepTest, PeakLagTracksPeriod)
{
    const std::size_t period = GetParam();
    auto s = squareWave(period, 4096 / period + 4);
    auto gram = autocorrelogram(s, 1000);
    auto peaks = findPeaks(gram, 0.5, period / 4);
    ASSERT_FALSE(peaks.empty()) << "period=" << period;
    EXPECT_NEAR(static_cast<double>(peaks[0].lag),
                static_cast<double>(period), 2.0);
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodSweepTest,
                         ::testing::Values(64, 128, 256, 512));

} // namespace
} // namespace cchunter
