#include <gtest/gtest.h>

#include <cmath>

#include "detect/autocorrelation.hh"
#include "util/rng.hh"

namespace cchunter
{
namespace
{

/** Square wave with `period` (half ones, half zeros), `cycles` repeats. */
std::vector<double>
squareWave(std::size_t period, std::size_t cycles)
{
    std::vector<double> s;
    s.reserve(period * cycles);
    for (std::size_t c = 0; c < cycles; ++c) {
        for (std::size_t i = 0; i < period; ++i)
            s.push_back(i < period / 2 ? 1.0 : 0.0);
    }
    return s;
}

TEST(AutocorrelationTest, LagZeroIsOne)
{
    std::vector<double> s{1, 2, 3, 4, 5, 4, 3, 2};
    EXPECT_NEAR(autocorrelationAt(s, 0), 1.0, 1e-12);
}

TEST(AutocorrelationTest, ConstantSeriesIsZero)
{
    std::vector<double> s(100, 5.0);
    EXPECT_DOUBLE_EQ(autocorrelationAt(s, 1), 0.0);
    EXPECT_DOUBLE_EQ(autocorrelationAt(s, 5), 0.0);
}

TEST(AutocorrelationTest, LagBeyondLengthIsZero)
{
    std::vector<double> s{1, 2, 3};
    EXPECT_DOUBLE_EQ(autocorrelationAt(s, 3), 0.0);
    EXPECT_DOUBLE_EQ(autocorrelationAt(s, 100), 0.0);
}

TEST(AutocorrelationTest, SquareWavePeaksAtPeriod)
{
    auto s = squareWave(64, 16);
    const double at_period = autocorrelationAt(s, 64);
    const double at_half = autocorrelationAt(s, 32);
    EXPECT_GT(at_period, 0.85);
    EXPECT_LT(at_half, -0.75);
}

TEST(AutocorrelationTest, WhiteNoiseIsUncorrelated)
{
    Rng rng(1);
    std::vector<double> s;
    for (int i = 0; i < 5000; ++i)
        s.push_back(rng.nextDouble());
    for (std::size_t lag : {1u, 7u, 50u})
        EXPECT_LT(std::abs(autocorrelationAt(s, lag)), 0.05);
}

TEST(AutocorrelationTest, AlternatingSeriesNegativeAtOddLags)
{
    std::vector<double> s;
    for (int i = 0; i < 200; ++i)
        s.push_back(i % 2 ? 1.0 : 0.0);
    EXPECT_LT(autocorrelationAt(s, 1), -0.9);
    EXPECT_GT(autocorrelationAt(s, 2), 0.9);
}

TEST(AutocorrelogramTest, MatchesPointwiseComputation)
{
    Rng rng(2);
    std::vector<double> s;
    for (int i = 0; i < 300; ++i)
        s.push_back(rng.nextGaussian(0.0, 1.0) +
                    std::sin(i * 2.0 * M_PI / 25.0));
    auto gram = autocorrelogram(s, 60);
    ASSERT_EQ(gram.size(), 61u);
    for (std::size_t lag = 0; lag <= 60; ++lag)
        EXPECT_NEAR(gram[lag], autocorrelationAt(s, lag), 1e-12);
}

TEST(AutocorrelogramTest, DegenerateSeriesAllZero)
{
    auto gram = autocorrelogram({1.0}, 10);
    ASSERT_EQ(gram.size(), 11u);
    for (double v : gram)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FindPeaksTest, FindsSquareWavePeaks)
{
    auto s = squareWave(50, 30);
    auto gram = autocorrelogram(s, 300);
    auto peaks = findPeaks(gram, 0.5, 8);
    // Peaks at 50, 100, 150, 200, 250, 300 (some boundary effects).
    ASSERT_GE(peaks.size(), 4u);
    EXPECT_NEAR(static_cast<double>(peaks[0].lag), 50.0, 2.0);
    EXPECT_NEAR(static_cast<double>(peaks[1].lag), 100.0, 2.0);
}

TEST(FindPeaksTest, RespectsMinValue)
{
    auto s = squareWave(50, 30);
    auto gram = autocorrelogram(s, 300);
    auto none = findPeaks(gram, 1.1, 8);
    EXPECT_TRUE(none.empty());
}

TEST(FindPeaksTest, MinSeparationMergesNearbyPeaks)
{
    // Construct a correlogram with two local maxima 3 lags apart.
    std::vector<double> gram{0.0, 0.2, 0.8, 0.3, 0.9, 0.1, 0.0};
    auto peaks = findPeaks(gram, 0.5, 8);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].lag, 4u);
    EXPECT_DOUBLE_EQ(peaks[0].value, 0.9);
}

TEST(FindPeaksTest, EmptyCorrelogram)
{
    EXPECT_TRUE(findPeaks({}, 0.1).empty());
}

TEST(FindPeaksTest, AllZeroCorrelogramHasNoPeaks)
{
    // A degenerate (constant) series yields an all-zero correlogram;
    // even a floor of 0.0 must not manufacture peaks from the flat line.
    std::vector<double> gram(200, 0.0);
    EXPECT_TRUE(findPeaks(gram, 0.0).empty());
    EXPECT_TRUE(findPeaks(gram, 0.5).empty());
}

TEST(FindPeaksTest, InteriorPlateauReportsFirstSampleOnly)
{
    std::vector<double> gram{0.0, 0.2, 0.9, 0.9, 0.9, 0.2, 0.0};
    auto peaks = findPeaks(gram, 0.5, 1);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].lag, 2u);
    EXPECT_DOUBLE_EQ(peaks[0].value, 0.9);
}

TEST(FindPeaksTest, PlateauTouchingUpperBoundaryCounts)
{
    // The flat top runs into the last sample; its first sample is
    // still an interior local maximum and must be reported.
    std::vector<double> gram{0.0, 0.1, 0.8, 0.8};
    auto peaks = findPeaks(gram, 0.5, 1);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].lag, 2u);
}

TEST(FindPeaksTest, PlateauStartingAtLagZeroExcluded)
{
    // Lag 0 is excluded by definition, and lag 1 continues a plateau
    // that started there, so no peak may be reported.
    std::vector<double> gram{0.9, 0.9, 0.1, 0.0};
    EXPECT_TRUE(findPeaks(gram, 0.5, 1).empty());
}

TEST(FindPeaksTest, PeakAtLastInteriorLag)
{
    std::vector<double> gram{0.0, 0.1, 0.2, 0.9, 0.3};
    auto peaks = findPeaks(gram, 0.5, 1);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].lag, 3u);
}

TEST(FindPeaksTest, MinSeparationTieKeepsEarlierPeak)
{
    // Two equal-valued maxima 3 lags apart with min_separation 8: the
    // replacement rule is strictly-greater, so the earlier lag wins.
    std::vector<double> gram{0.0, 0.2, 0.9, 0.3, 0.9, 0.1, 0.0};
    auto peaks = findPeaks(gram, 0.5, 8);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].lag, 2u);
    EXPECT_DOUBLE_EQ(peaks[0].value, 0.9);
}

TEST(FindPeaksTest, ExactlyMinSeparationApartKeepsBoth)
{
    // Peaks at lags 2 and 10 with min_separation 8: the gap equals the
    // minimum, which the rule (gap < min) allows.
    std::vector<double> gram{0.0, 0.1, 0.9, 0.1, 0.0, 0.0,
                             0.0, 0.0, 0.1, 0.2, 0.8, 0.1, 0.0};
    auto peaks = findPeaks(gram, 0.5, 8);
    ASSERT_EQ(peaks.size(), 2u);
    EXPECT_EQ(peaks[0].lag, 2u);
    EXPECT_EQ(peaks[1].lag, 10u);
}

TEST(FindPeaksTest, ChainOfClosePeaksKeepsRunningMaximum)
{
    // Successive near peaks within min_separation collapse onto the
    // strongest seen so far.
    std::vector<double> gram{0.0, 0.6, 0.1, 0.7, 0.1, 0.95,
                             0.1, 0.65, 0.0};
    auto peaks = findPeaks(gram, 0.5, 8);
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_EQ(peaks[0].lag, 5u);
    EXPECT_DOUBLE_EQ(peaks[0].value, 0.95);
}

TEST(AutocorrelogramBatchedTest, BitIdenticalToIndependentCalls)
{
    Rng rng(61);
    // A mix straddling the FFT dispatch thresholds: short series take
    // the naive path inside the batch, long ones share the plan.
    std::vector<std::vector<double>> series;
    for (const std::size_t n : {16u, 100u, 300u, 2048u, 4096u}) {
        std::vector<double> s;
        s.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            s.push_back(rng.nextDouble() < 0.5 ? 0.0 : 1.0);
        series.push_back(std::move(s));
    }
    std::vector<const std::vector<double>*> pointers;
    for (const auto& s : series)
        pointers.push_back(&s);

    const std::size_t max_lag = 128;
    const auto batched = autocorrelogramsBatched(pointers, max_lag);
    ASSERT_EQ(batched.size(), series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
        const auto independent = autocorrelogram(series[i], max_lag);
        ASSERT_EQ(batched[i].size(), independent.size()) << "i=" << i;
        for (std::size_t lag = 0; lag < independent.size(); ++lag)
            EXPECT_EQ(batched[i][lag], independent[lag])
                << "i=" << i << " lag=" << lag;
    }
}

TEST(AutocorrelogramBatchedTest, EmptyBatchYieldsNothing)
{
    EXPECT_TRUE(autocorrelogramsBatched({}, 32).empty());
}

TEST(AutocorrelogramFftTest, ScratchReuseAcrossSizesBitIdentical)
{
    // One scratch arena across differently-sized series (the batched
    // pass's access pattern): every result must match the fresh call.
    Rng rng(62);
    FftScratch scratch;
    std::vector<double> out;
    for (const std::size_t n : {4096u, 300u, 2048u, 700u}) {
        std::vector<double> s;
        s.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            s.push_back(rng.nextGaussian(0.0, 1.0));
        autocorrelogramFft(s, 64, scratch, out);
        const auto fresh = autocorrelogramFft(s, 64);
        ASSERT_EQ(out.size(), fresh.size()) << "n=" << n;
        for (std::size_t lag = 0; lag < fresh.size(); ++lag)
            EXPECT_EQ(out[lag], fresh[lag])
                << "n=" << n << " lag=" << lag;
    }
}

/** Period sweep mirroring the paper's cache-set sensitivity study. */
class PeriodSweepTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PeriodSweepTest, PeakLagTracksPeriod)
{
    const std::size_t period = GetParam();
    auto s = squareWave(period, 4096 / period + 4);
    auto gram = autocorrelogram(s, 1000);
    auto peaks = findPeaks(gram, 0.5, period / 4);
    ASSERT_FALSE(peaks.empty()) << "period=" << period;
    EXPECT_NEAR(static_cast<double>(peaks[0].lag),
                static_cast<double>(period), 2.0);
}

INSTANTIATE_TEST_SUITE_P(Periods, PeriodSweepTest,
                         ::testing::Values(64, 128, 256, 512));

} // namespace
} // namespace cchunter
