#include <gtest/gtest.h>

#include "detect/discretizer.hh"

namespace cchunter
{
namespace
{

TEST(DiscretizerTest, LevelOfLogScale)
{
    HistogramDiscretizer d;
    EXPECT_EQ(d.levelOf(0), 0u);
    EXPECT_EQ(d.levelOf(1), 1u);
    EXPECT_EQ(d.levelOf(2), 1u);
    EXPECT_EQ(d.levelOf(3), 2u);
    EXPECT_EQ(d.levelOf(7), 3u);
    EXPECT_EQ(d.levelOf(8), 3u);
    EXPECT_EQ(d.levelOf(15), 4u);
}

TEST(DiscretizerTest, LevelSaturatesAtAlphabet)
{
    DiscretizerParams p;
    p.alphabetSize = 4;
    HistogramDiscretizer d(p);
    EXPECT_EQ(d.levelOf(1000000), 3u);
}

TEST(DiscretizerTest, StringHasOneSymbolPerBin)
{
    HistogramDiscretizer d;
    Histogram h(16);
    h.addSample(3, 7);
    const std::string s = d.toString(h);
    EXPECT_EQ(s.size(), 16u);
    EXPECT_EQ(s[3], '3'); // level of 7 is 3
    EXPECT_EQ(s[0], '0');
}

TEST(DiscretizerTest, FeaturesMatchString)
{
    HistogramDiscretizer d;
    Histogram h(8);
    h.addSample(1, 1);
    h.addSample(5, 100);
    const std::string s = d.toString(h);
    const auto f = d.toFeatures(h);
    ASSERT_EQ(f.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(f[i], static_cast<double>(s[i] - '0'));
}

TEST(DiscretizerTest, SimilarHistogramsSameString)
{
    // Counts within the same log bucket map to the same symbol.
    HistogramDiscretizer d;
    Histogram a(8), b(8);
    a.addSample(2, 40);
    b.addSample(2, 50);
    EXPECT_EQ(d.toString(a), d.toString(b));
}

TEST(DiscretizerTest, HammingDistance)
{
    EXPECT_EQ(HistogramDiscretizer::hammingDistance("abc", "abc"), 0u);
    EXPECT_EQ(HistogramDiscretizer::hammingDistance("abc", "axc"), 1u);
    EXPECT_ANY_THROW(HistogramDiscretizer::hammingDistance("a", "ab"));
}

TEST(DiscretizerTest, InvalidAlphabetThrows)
{
    DiscretizerParams p;
    p.alphabetSize = 1;
    EXPECT_ANY_THROW(HistogramDiscretizer{p});
    p.alphabetSize = 100;
    EXPECT_ANY_THROW(HistogramDiscretizer{p});
}

} // namespace
} // namespace cchunter
