#include <gtest/gtest.h>

#include "detect/event_train.hh"

namespace cchunter
{
namespace
{

TEST(EventTrainTest, StartsEmpty)
{
    EventTrain t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.size(), 0u);
}

TEST(EventTrainTest, ImplicitWindowTracksEvents)
{
    EventTrain t;
    t.addEvent(100);
    t.addEvent(200);
    t.addEvent(250);
    EXPECT_EQ(t.windowBegin(), 100u);
    EXPECT_EQ(t.windowEnd(), 251u);
    EXPECT_EQ(t.duration(), 151u);
}

TEST(EventTrainTest, ExplicitWindowRespected)
{
    EventTrain t(0, 1000);
    t.addEvent(10);
    EXPECT_EQ(t.windowBegin(), 0u);
    EXPECT_EQ(t.windowEnd(), 1000u);
}

TEST(EventTrainTest, OutOfOrderEventsPanic)
{
    EventTrain t;
    t.addEvent(100);
    EXPECT_ANY_THROW(t.addEvent(50));
}

TEST(EventTrainTest, InvalidWindowThrows)
{
    EXPECT_ANY_THROW(EventTrain(10, 5));
    EventTrain t;
    EXPECT_ANY_THROW(t.setWindow(10, 5));
}

TEST(EventTrainTest, MeanRate)
{
    EventTrain t(0, 1000);
    for (Tick tick = 0; tick < 1000; tick += 100)
        t.addEvent(tick);
    EXPECT_DOUBLE_EQ(t.meanRate(), 0.01);
}

TEST(EventTrainTest, CountInRange)
{
    EventTrain t(0, 100);
    t.addEvent(10);
    t.addEvent(20);
    t.addEvent(30);
    t.addEvent(90);
    EXPECT_EQ(t.countInRange(0, 100), 4u);
    EXPECT_EQ(t.countInRange(15, 35), 2u);
    EXPECT_EQ(t.countInRange(30, 31), 1u);
    EXPECT_EQ(t.countInRange(31, 89), 0u);
}

TEST(EventTrainTest, SliceKeepsWindowAndEvents)
{
    EventTrain t(0, 100);
    for (Tick tick = 5; tick < 100; tick += 10)
        t.addEvent(tick, static_cast<std::uint8_t>(tick % 2));
    EventTrain s = t.slice(20, 60);
    EXPECT_EQ(s.windowBegin(), 20u);
    EXPECT_EQ(s.windowEnd(), 60u);
    EXPECT_EQ(s.size(), 4u);
    EXPECT_EQ(s[0].time, 25u);
}

TEST(EventTrainTest, LabelSeries)
{
    EventTrain t;
    t.addEvent(1, 1);
    t.addEvent(2, 0);
    t.addEvent(3, 1);
    auto labels = t.labelSeries();
    ASSERT_EQ(labels.size(), 3u);
    EXPECT_DOUBLE_EQ(labels[0], 1.0);
    EXPECT_DOUBLE_EQ(labels[1], 0.0);
    EXPECT_DOUBLE_EQ(labels[2], 1.0);
}

TEST(EventTrainTest, InterEventIntervals)
{
    EventTrain t;
    t.addEvent(10);
    t.addEvent(30);
    t.addEvent(35);
    auto gaps = t.interEventIntervals();
    ASSERT_EQ(gaps.size(), 2u);
    EXPECT_DOUBLE_EQ(gaps[0], 20.0);
    EXPECT_DOUBLE_EQ(gaps[1], 5.0);
}

TEST(EventTrainTest, ClearResets)
{
    EventTrain t(0, 50);
    t.addEvent(10);
    t.clear();
    EXPECT_TRUE(t.empty());
    // After clear the window is implicit again.
    t.addEvent(500);
    EXPECT_EQ(t.windowBegin(), 500u);
}

TEST(EventTrainTest, EventExactlyAtWindowEndIsExcluded)
{
    // The observation window is [begin, end): an event landing exactly
    // on end sits outside every range query and slice ending there.
    EventTrain t(0, 100);
    t.addEvent(50);
    t.addEvent(100);
    EXPECT_EQ(t.countInRange(0, 100), 1u);
    EXPECT_EQ(t.countInRange(100, 101), 1u);
    const EventTrain s = t.slice(0, 100);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_EQ(s[0].time, 50u);
}

TEST(EventTrainTest, EmptyWindowHasUnitDurationAndZeroRate)
{
    // A zero-length window reports duration 1 (never 0) so meanRate
    // and density divisions stay well-defined.
    EventTrain t(40, 40);
    EXPECT_EQ(t.duration(), 1u);
    EXPECT_DOUBLE_EQ(t.meanRate(), 0.0);
    EXPECT_EQ(t.countInRange(0, 1000), 0u);
    const EventTrain s = t.slice(40, 40);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.duration(), 1u);
}

TEST(EventTrainTest, OutOfOrderAppendRejectedAfterEqualTimes)
{
    EventTrain t;
    t.addEvent(10);
    t.addEvent(10); // equal is fine (non-decreasing)
    EXPECT_ANY_THROW(t.addEvent(9));
    // The rejected append must not have corrupted the train.
    EXPECT_EQ(t.size(), 2u);
    EXPECT_NO_THROW(t.addEvent(11));
}

TEST(EventTrainTest, DuplicateTimesAllowed)
{
    EventTrain t;
    t.addEvent(5);
    EXPECT_NO_THROW(t.addEvent(5));
    EXPECT_EQ(t.size(), 2u);
}

} // namespace
} // namespace cchunter
