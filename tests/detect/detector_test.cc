#include <gtest/gtest.h>

#include "detect/detector.hh"
#include "util/rng.hh"

namespace cchunter
{
namespace
{

Histogram
burstyQuantum(Rng& rng)
{
    Histogram h(128);
    h.addSample(0, 1600 + rng.nextBelow(100));
    h.addSample(1, rng.nextBelow(4));
    h.addSample(20, 200 + rng.nextBelow(50));
    h.addSample(21, 100 + rng.nextBelow(20));
    return h;
}

Histogram
benignQuantum(Rng& rng)
{
    Histogram h(128);
    h.addSample(0, 2300 + rng.nextBelow(100));
    h.addSample(1, 50 + rng.nextBelow(20));
    h.addSample(2, 12 + rng.nextBelow(8));
    h.addSample(3, rng.nextBelow(5));
    return h;
}

std::vector<double>
squareWave(std::size_t period, std::size_t cycles)
{
    std::vector<double> s;
    for (std::size_t c = 0; c < cycles; ++c)
        for (std::size_t i = 0; i < period; ++i)
            s.push_back(i < period / 2 ? 1.0 : 0.0);
    return s;
}

TEST(CCHunterTest, ContentionChannelDetected)
{
    CCHunter hunter;
    Rng rng(1);
    std::vector<Histogram> quanta;
    for (int i = 0; i < 24; ++i)
        quanta.push_back(burstyQuantum(rng));
    auto v = hunter.analyzeContention(quanta);
    EXPECT_TRUE(v.detected);
    EXPECT_GT(v.combined.likelihoodRatio, 0.9);
    EXPECT_EQ(v.significantQuanta, 24u);
}

TEST(CCHunterTest, BenignQuantaClean)
{
    CCHunter hunter;
    Rng rng(2);
    std::vector<Histogram> quanta;
    for (int i = 0; i < 24; ++i)
        quanta.push_back(benignQuantum(rng));
    auto v = hunter.analyzeContention(quanta);
    EXPECT_FALSE(v.detected);
}

TEST(CCHunterTest, EmptyContentionInputClean)
{
    CCHunter hunter;
    auto v = hunter.analyzeContention(std::vector<Histogram>{});
    EXPECT_FALSE(v.detected);
}

TEST(CCHunterTest, SingleQuantumUsesCombinedSignificance)
{
    CCHunter hunter;
    Rng rng(3);
    auto v = hunter.analyzeContention({burstyQuantum(rng)});
    EXPECT_TRUE(v.detected);
    auto clean = hunter.analyzeContention({benignQuantum(rng)});
    EXPECT_FALSE(clean.detected);
}

TEST(CCHunterTest, OscillationChannelDetected)
{
    CCHunter hunter;
    auto v = hunter.analyzeOscillation(squareWave(128, 40));
    EXPECT_TRUE(v.detected);
    EXPECT_NEAR(static_cast<double>(v.analysis.dominantLag), 128.0, 4.0);
}

TEST(CCHunterTest, RandomSeriesClean)
{
    CCHunter hunter;
    Rng rng(4);
    std::vector<double> s;
    for (int i = 0; i < 6000; ++i)
        s.push_back(rng.nextBool() ? 1.0 : 0.0);
    auto v = hunter.analyzeOscillation(s);
    EXPECT_FALSE(v.detected);
}

TEST(CCHunterTest, WindowedAnalysisFindsSparseChannel)
{
    // A brief channel episode inside a long quiet train; whole-train
    // analysis dilutes it, finer windows recover it (paper figure 11).
    std::vector<double> s(2000, 0.0);
    auto wave = squareWave(64, 30);
    s.insert(s.end(), wave.begin(), wave.end());
    s.insert(s.end(), 2000, 0.0);

    CCHunter hunter;
    auto windowed = hunter.analyzeOscillationWindowed(s, 3);
    EXPECT_TRUE(windowed.detected);
}

TEST(CCHunterTest, WindowedZeroWindowsThrows)
{
    CCHunter hunter;
    EXPECT_ANY_THROW(hunter.analyzeOscillationWindowed({1.0, 0.0}, 0));
}

TEST(CCHunterTest, SummariesMentionVerdict)
{
    CCHunter hunter;
    Rng rng(5);
    std::vector<Histogram> quanta;
    for (int i = 0; i < 8; ++i)
        quanta.push_back(burstyQuantum(rng));
    auto v = hunter.analyzeContention(quanta);
    EXPECT_NE(v.summary().find("DETECTED"), std::string::npos);

    auto o = hunter.analyzeOscillation(squareWave(64, 64));
    EXPECT_NE(o.summary().find("DETECTED"), std::string::npos);
}

TEST(CCHunterTest, PerQuantumAnalysesReturned)
{
    CCHunter hunter;
    Rng rng(6);
    std::vector<Histogram> quanta;
    for (int i = 0; i < 10; ++i)
        quanta.push_back(burstyQuantum(rng));
    auto v = hunter.analyzeContention(quanta);
    EXPECT_EQ(v.perQuantum.size(), 10u);
}

} // namespace
} // namespace cchunter
