#include <gtest/gtest.h>

#include "detect/pattern_clustering.hh"
#include "util/rng.hh"

namespace cchunter
{
namespace
{

/** A quantum histogram with a covert-channel burst signature. */
Histogram
burstyQuantum(Rng& rng)
{
    Histogram h(128);
    h.addSample(0, 1600 + rng.nextBelow(100));
    h.addSample(1, rng.nextBelow(5));
    h.addSample(19, 80 + rng.nextBelow(30));
    h.addSample(20, 180 + rng.nextBelow(40));
    h.addSample(21, 90 + rng.nextBelow(30));
    return h;
}

/** A quantum histogram with benign decaying densities. */
Histogram
benignQuantum(Rng& rng)
{
    Histogram h(128);
    h.addSample(0, 2300 + rng.nextBelow(200));
    h.addSample(1, 40 + rng.nextBelow(30));
    h.addSample(2, 10 + rng.nextBelow(10));
    h.addSample(3, rng.nextBelow(6));
    return h;
}

/** A fully idle quantum. */
Histogram
idleQuantum()
{
    Histogram h(128);
    h.addSample(0, 2500);
    return h;
}

TEST(PatternClusteringTest, RecurrentBurstsDetected)
{
    Rng rng(1);
    std::vector<Histogram> quanta;
    for (int i = 0; i < 32; ++i)
        quanta.push_back(burstyQuantum(rng));
    PatternClusteringAnalyzer a;
    auto r = a.analyze(quanta);
    EXPECT_TRUE(r.recurrent);
    EXPECT_GT(r.maxLikelihoodRatio, 0.9);
    EXPECT_EQ(r.burstyQuanta, 32u);
}

TEST(PatternClusteringTest, BenignQuantaNotRecurrent)
{
    Rng rng(2);
    std::vector<Histogram> quanta;
    for (int i = 0; i < 32; ++i)
        quanta.push_back(benignQuantum(rng));
    PatternClusteringAnalyzer a;
    auto r = a.analyze(quanta);
    EXPECT_FALSE(r.recurrent);
}

TEST(PatternClusteringTest, MixedQuantaStillDetected)
{
    // A low-duty-cycle channel: bursts in 25% of quanta, idle otherwise.
    Rng rng(3);
    std::vector<Histogram> quanta;
    for (int i = 0; i < 64; ++i) {
        if (i % 4 == 0)
            quanta.push_back(burstyQuantum(rng));
        else
            quanta.push_back(idleQuantum());
    }
    PatternClusteringAnalyzer a;
    auto r = a.analyze(quanta);
    EXPECT_TRUE(r.recurrent);
    EXPECT_GE(r.burstyQuanta, 16u);
}

TEST(PatternClusteringTest, SingleBurstIsNotRecurrent)
{
    Rng rng(4);
    std::vector<Histogram> quanta;
    quanta.push_back(burstyQuantum(rng));
    for (int i = 0; i < 63; ++i)
        quanta.push_back(idleQuantum());
    PatternClusteringAnalyzer a;
    auto r = a.analyze(quanta);
    // One bursty quantum out of 64 fails the minimum-quanta rule.
    EXPECT_FALSE(r.recurrent);
}

TEST(PatternClusteringTest, EmptyInputIsClean)
{
    PatternClusteringAnalyzer a;
    auto r = a.analyze(std::vector<Histogram>{});
    EXPECT_FALSE(r.recurrent);
    EXPECT_EQ(r.burstyQuanta, 0u);
}

TEST(PatternClusteringTest, WindowLimitsToMostRecentQuanta)
{
    PatternClusteringParams p;
    p.windowQuanta = 16;
    PatternClusteringAnalyzer a(p);
    Rng rng(5);
    // Old bursty quanta followed by > windowQuanta idle ones: the bursts
    // fall outside the analysis window.
    std::vector<Histogram> quanta;
    for (int i = 0; i < 8; ++i)
        quanta.push_back(burstyQuantum(rng));
    for (int i = 0; i < 32; ++i)
        quanta.push_back(idleQuantum());
    auto r = a.analyze(quanta);
    EXPECT_FALSE(r.recurrent);
    EXPECT_EQ(r.strings.size(), 16u);
}

TEST(PatternClusteringTest, StringsHaveBinLength)
{
    Rng rng(6);
    std::vector<Histogram> quanta{burstyQuantum(rng), idleQuantum()};
    PatternClusteringAnalyzer a;
    auto r = a.analyze(quanta);
    ASSERT_EQ(r.strings.size(), 2u);
    EXPECT_EQ(r.strings[0].size(), 128u);
}

TEST(PatternClusteringTest, ClusterAnalysesAlignWithClusters)
{
    Rng rng(7);
    std::vector<Histogram> quanta;
    for (int i = 0; i < 16; ++i)
        quanta.push_back(i % 2 ? burstyQuantum(rng) : benignQuantum(rng));
    PatternClusteringAnalyzer a;
    auto r = a.analyze(quanta);
    EXPECT_EQ(r.clusterAnalyses.size(), r.clustering.centroids.size());
    EXPECT_EQ(r.clusterBursty.size(), r.clustering.centroids.size());
}

TEST(PatternClusteringTest, InvalidParamsThrow)
{
    PatternClusteringParams p;
    p.windowQuanta = 0;
    EXPECT_ANY_THROW(PatternClusteringAnalyzer{p});
    PatternClusteringParams q;
    q.maxClusters = 1;
    EXPECT_ANY_THROW(PatternClusteringAnalyzer{q});
}

TEST(PatternClusteringTest, FeatureReductionPreservesVerdicts)
{
    Rng rng(8);
    std::vector<Histogram> quanta;
    for (int i = 0; i < 48; ++i)
        quanta.push_back(i % 3 ? idleQuantum() : burstyQuantum(rng));

    PatternClusteringParams full;
    full.maxFeatureDims = 0; // disabled
    PatternClusteringParams reduced;
    reduced.maxFeatureDims = 8;

    auto rf = PatternClusteringAnalyzer(full).analyze(quanta);
    auto rr = PatternClusteringAnalyzer(reduced).analyze(quanta);
    EXPECT_TRUE(rf.featureDims.empty());
    EXPECT_FALSE(rr.featureDims.empty());
    EXPECT_LE(rr.featureDims.size(), 8u);
    EXPECT_EQ(rf.recurrent, rr.recurrent);
    EXPECT_EQ(rf.burstyQuanta, rr.burstyQuanta);
}

TEST(PatternClusteringTest, ReducedDimsAreTheVaryingBins)
{
    Rng rng(9);
    std::vector<Histogram> quanta;
    for (int i = 0; i < 32; ++i)
        quanta.push_back(i % 2 ? idleQuantum() : burstyQuantum(rng));
    PatternClusteringParams p;
    p.maxFeatureDims = 6;
    auto r = PatternClusteringAnalyzer(p).analyze(quanta);
    // The burst bins (19-21) must be among the selected features.
    bool has_burst_bin = false;
    for (std::size_t d : r.featureDims)
        has_burst_bin |= (d >= 19 && d <= 21);
    EXPECT_TRUE(has_burst_bin);
}

TEST(PatternClusteringTest, IdenticalQuantaSurviveReduction)
{
    std::vector<Histogram> quanta(16, idleQuantum());
    PatternClusteringParams p;
    p.maxFeatureDims = 8;
    auto r = PatternClusteringAnalyzer(p).analyze(quanta);
    EXPECT_FALSE(r.recurrent);
}

/** Parameterized duty-cycle sweep: recurrence holds as the fraction of
 *  bursty quanta varies (irregular, low-bandwidth channels). */
class DutyCycleTest : public ::testing::TestWithParam<int>
{
};

TEST_P(DutyCycleTest, RecurrenceAcrossDutyCycles)
{
    const int one_in = GetParam();
    Rng rng(100 + one_in);
    std::vector<Histogram> quanta;
    for (int i = 0; i < 128; ++i) {
        if (i % one_in == 0)
            quanta.push_back(burstyQuantum(rng));
        else
            quanta.push_back(idleQuantum());
    }
    PatternClusteringAnalyzer a;
    auto r = a.analyze(quanta);
    EXPECT_TRUE(r.recurrent) << "duty cycle 1/" << one_in;
}

INSTANTIATE_TEST_SUITE_P(DutyCycles, DutyCycleTest,
                         ::testing::Values(1, 2, 4, 8, 16));

} // namespace
} // namespace cchunter
