#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "detect/indicator2.hh"

namespace cchunter
{
namespace
{

/** Run fn, which should fatal(); return its message ("" if it ran). */
template <typename Fn>
std::string
fatalMessageOf(Fn&& fn)
{
    try {
        fn();
    } catch (const std::runtime_error& e) {
        return e.what();
    }
    return "";
}

/** A histogram whose only busy mass is `count` windows at density
 *  `bin` (plus idle windows in bin 0, which must not matter). */
Histogram
densitySpike(std::size_t bin, std::uint64_t count,
             std::uint64_t idle = 1000)
{
    Histogram h(128);
    h.addSample(0, idle);
    h.addSample(bin, count);
    return h;
}

/** A label series of `count` alternating same-label runs, each
 *  `runLength` events long. */
std::vector<double>
uniformRuns(std::size_t runLength, std::size_t count)
{
    std::vector<double> s;
    for (std::size_t r = 0; r < count; ++r)
        for (std::size_t i = 0; i < runLength; ++i)
            s.push_back(r % 2 ? 1.0 : 0.0);
    return s;
}

TEST(Indicator2Test, ParamsOutOfRangeAreFatal)
{
    Indicator2Params params;
    params.contentionScale = 0.0;
    EXPECT_NE(fatalMessageOf([&] { Indicator2 i(params); })
                  .find("contention_scale"),
              std::string::npos);
    params = {};
    params.runScale = -1.0;
    EXPECT_NE(
        fatalMessageOf([&] { Indicator2 i(params); }).find("run_scale"),
        std::string::npos);
}

TEST(Indicator2Test, EmptyInputsScoreZero)
{
    const Indicator2 indicator;
    const Indicator2Result contention =
        indicator.scoreContention(std::vector<Histogram>{});
    EXPECT_EQ(contention.score, 0.0);
    EXPECT_EQ(contention.samples, 0u);
    const Indicator2Result oscillation =
        indicator.scoreOscillation({});
    EXPECT_EQ(oscillation.score, 0.0);
    EXPECT_EQ(oscillation.samples, 0u);
}

TEST(Indicator2Test, ContentionBelowSampleFloorScoresZero)
{
    const Indicator2 indicator; // minNonZeroSamples = 4
    const std::vector<Histogram> thin{densitySpike(20, 3)};
    const Indicator2Result starved =
        indicator.scoreContention(thin);
    EXPECT_EQ(starved.samples, 3u);
    EXPECT_EQ(starved.score, 0.0);
    const std::vector<Histogram> enough{densitySpike(20, 4)};
    EXPECT_GT(indicator.scoreContention(enough).score, 0.0);
}

TEST(Indicator2Test, ContentionStatisticIsExact)
{
    // Bins: three windows at density 2, one at density 4 →
    // M2 = (3·4 + 1·16) / 4 = 7 exactly; scale 7 squashes to 0.5.
    Indicator2Params params;
    params.contentionScale = 7.0;
    const Indicator2 indicator(params);
    Histogram h(128);
    h.addSample(0, 5000); // idle windows must not dilute M2
    h.addSample(2, 3);
    h.addSample(4, 1);
    const Indicator2Result r =
        indicator.scoreContention(std::vector<Histogram>{h});
    EXPECT_DOUBLE_EQ(r.rawStatistic, 7.0);
    EXPECT_DOUBLE_EQ(r.score, 0.5);
    EXPECT_EQ(r.samples, 4u);
    EXPECT_TRUE(r.detectedAt(0.5));
    EXPECT_FALSE(r.detectedAt(0.51));
}

TEST(Indicator2Test, OscillationBelowSeriesFloorScoresZero)
{
    const Indicator2 indicator; // minSeriesLength = 64
    const Indicator2Result r =
        indicator.scoreOscillation(uniformRuns(4, 8)); // 32 events
    EXPECT_EQ(r.samples, 32u);
    EXPECT_EQ(r.score, 0.0);
}

TEST(Indicator2Test, OscillationStatisticIsExact)
{
    // 16 alternating runs of 8 → median run 8, balance 1 →
    // raw = 64; runScale 64 squashes to exactly 0.5.
    Indicator2Params params;
    params.runScale = 64.0;
    const Indicator2 indicator(params);
    const Indicator2Result r =
        indicator.scoreOscillation(uniformRuns(8, 16));
    EXPECT_DOUBLE_EQ(r.rawStatistic, 64.0);
    EXPECT_DOUBLE_EQ(r.score, 0.5);
    EXPECT_EQ(r.samples, 128u);
}

TEST(Indicator2Test, OscillationBalanceSuppressesOneSidedSeries)
{
    // One huge run of a single label is not communication: the
    // 4p(1-p) balance factor zeroes a constant series outright.
    const Indicator2 indicator;
    const std::vector<double> constant(256, 1.0);
    EXPECT_EQ(indicator.scoreOscillation(constant).score, 0.0);
}

} // namespace
} // namespace cchunter
