/**
 * @file
 * Cross-module integration tests: hardware/software consistency of the
 * full audit pipeline, super-secure auditing, channel structure
 * ground-truthing, and determinism.
 */

#include <gtest/gtest.h>

#include <memory>

#include "auditor/cc_auditor.hh"
#include "auditor/daemon.hh"
#include "channels/bus_channel.hh"
#include "channels/cache_channel.hh"
#include "channels/divider_channel.hh"
#include "detect/event_density.hh"
#include "scenario/experiment.hh"
#include "sim/machine.hh"
#include "workloads/suites.hh"

namespace cchunter
{
namespace
{

/**
 * The CC-Auditor's hardware histogram buffer must agree with the
 * software-side density computation over the same raw event train.
 */
TEST(PipelineTest, HardwareHistogramMatchesOfflineComputation)
{
    ScenarioOptions opts;
    opts.bandwidthBps = 10000.0;
    opts.quantum = 2000000; // exactly 20 delta-t windows of 100k
    opts.quanta = 1;
    opts.noiseProcesses = 0;
    opts.trainWindowTicks = opts.quantum;

    const BusScenarioResult r = runBusScenario(opts);
    ASSERT_EQ(r.quantaHistograms.size(), 1u);

    EventTrain train = r.eventTrain;
    train.setWindow(0, opts.quantum);
    const Histogram offline =
        buildEventDensityHistogram(train, busDeltaT, 128);

    const Histogram& hardware = r.quantaHistograms[0];
    ASSERT_EQ(offline.totalSamples(), hardware.totalSamples());
    for (std::size_t b = 0; b < 128; ++b)
        EXPECT_EQ(offline.bin(b), hardware.bin(b)) << "bin " << b;
}

/**
 * The cache channel's labelled train has the structure the oscillation
 * detector relies on: runs of T->S followed by runs of S->T whose
 * combined length approximates the number of channel sets.
 */
TEST(PipelineTest, CacheChannelRunStructureMatchesSets)
{
    ScenarioOptions opts;
    opts.bandwidthBps = 1000.0;
    opts.quantum = 2500000;
    opts.quanta = 8;
    opts.channelSets = 128;
    opts.cacheNoiseEvery = 0; // clean structure
    opts.noiseProcesses = 0;
    opts.cacheRoundsPerBit = 1;

    const CacheScenarioResult r = runCacheScenario(opts);
    ASSERT_GT(r.labelSeries.size(), 512u);

    // Measure run lengths after warm-up.
    std::vector<std::size_t> runs;
    std::size_t run = 1;
    for (std::size_t i = 257; i < r.labelSeries.size(); ++i) {
        if (r.labelSeries[i] == r.labelSeries[i - 1]) {
            ++run;
        } else {
            runs.push_back(run);
            run = 1;
        }
    }
    ASSERT_GT(runs.size(), 4u);
    double mean = 0.0;
    for (auto v : runs)
        mean += static_cast<double>(v);
    mean /= static_cast<double>(runs.size());
    // Runs of 64 (= setsPerGroup of 128 channel sets).
    EXPECT_NEAR(mean, 64.0, 8.0);
}

/** Super-secure mode: all three resources auditable at once. */
TEST(PipelineTest, SuperSecureAuditsAllUnitsSimultaneously)
{
    MachineParams mp;
    mp.mem.l1 = CacheGeometry{1024, 2, 64};
    mp.mem.l2 = CacheGeometry{4096, 1, 64};
    mp.scheduler.quantum = 1000000;
    Machine machine(mp);

    ChannelTiming timing;
    timing.start = 1000;
    timing.bandwidthBps = 10000.0;
    Rng rng(3);
    const Message msg = Message::random64(rng);

    BusTrojanParams bt;
    bt.timing = timing;
    bt.message = msg;
    machine.addProcess(std::make_unique<BusTrojan>(bt), 2);

    DividerTrojanParams dt;
    dt.timing = timing;
    dt.message = msg;
    machine.addProcess(std::make_unique<DividerTrojan>(dt), 0);
    DividerSpyParams ds;
    ds.timing = timing;
    machine.addProcess(std::make_unique<DividerSpy>(ds), 1);

    CCAuditor auditor(machine, 3); // super-secure configuration
    const AuditKey key = requestAuditKey(true);
    auditor.monitorBus(key, 0);
    auditor.monitorDivider(key, 1, 0);
    auditor.monitorCache(key, 2, 0);
    AuditDaemon daemon(machine, auditor);

    machine.runQuanta(3);
    EXPECT_EQ(daemon.contentionQuanta(0).size(), 3u);
    EXPECT_EQ(daemon.contentionQuanta(1).size(), 3u);
    EXPECT_GT(auditor.histogramBuffer(0)->totalEvents(), 0u);
    EXPECT_GT(auditor.histogramBuffer(1)->totalEvents(), 0u);
    // The divider channel is detectable from slot 1.
    EXPECT_TRUE(daemon.analyzeContention(1).detected);
}

TEST(PipelineTest, SuperSecureSlotLimitEnforced)
{
    Machine machine;
    EXPECT_ANY_THROW(CCAuditor(machine, 0));
    EXPECT_ANY_THROW(
        CCAuditor(machine, CCAuditor::maxSuperSecureSlots + 1));
}

/** Divider conflicts only accrue when both contexts are active. */
TEST(PipelineTest, DividerConflictsRequireCoResidency)
{
    ScenarioOptions opts;
    opts.bandwidthBps = 10000.0;
    opts.quantum = 2500000;
    opts.quanta = 2;
    opts.noiseProcesses = 0;
    opts.message = Message::fromBits(std::vector<bool>(8, false));

    // All-zero message: the trojan never contends, so the spy's
    // divisions run unconflicted and nothing is detected.
    const DividerScenarioResult r = runDividerScenario(opts);
    EXPECT_EQ(r.conflictEvents, 0u);
    EXPECT_FALSE(r.verdict.detected);
    // And the spy decodes all zeros.
    EXPECT_LT(r.bitErrorRate, 0.05);
}

/** The whole pipeline is deterministic per seed, channel by channel. */
TEST(PipelineTest, CacheScenarioDeterministic)
{
    ScenarioOptions opts;
    opts.bandwidthBps = 1000.0;
    opts.quantum = 2500000;
    opts.quanta = 4;
    const CacheScenarioResult a = runCacheScenario(opts);
    const CacheScenarioResult b = runCacheScenario(opts);
    ASSERT_EQ(a.labelSeries.size(), b.labelSeries.size());
    EXPECT_EQ(a.labelSeries, b.labelSeries);
    EXPECT_EQ(a.verdict.analysis.dominantLag,
              b.verdict.analysis.dominantLag);
}

/** Different seeds change interference but not verdicts. */
class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweepTest, DetectionRobustAcrossSeeds)
{
    ScenarioOptions opts;
    opts.bandwidthBps = 10000.0;
    opts.quantum = 2500000;
    opts.quanta = 6;
    opts.seed = GetParam();
    const BusScenarioResult bus = runBusScenario(opts);
    EXPECT_TRUE(bus.verdict.detected) << "seed " << GetParam();
    EXPECT_LT(bus.bitErrorRate, 0.1) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1, 7, 23, 99));

/**
 * Mixed environment: a covert pair on core 0's divider while a benign
 * pair hammers the bus; the divider alarms, the bus stays clean.
 */
TEST(PipelineTest, OnlyTheGuiltyResourceAlarms)
{
    MachineParams mp;
    mp.scheduler.quantum = 2500000;
    Machine machine(mp);

    ChannelTiming timing;
    timing.start = 1000;
    timing.bandwidthBps = 10000.0;
    Rng rng(5);
    const Message msg = Message::random64(rng);

    DividerTrojanParams dt;
    dt.timing = timing;
    dt.message = msg;
    machine.addProcess(std::make_unique<DividerTrojan>(dt), 0);
    DividerSpyParams ds;
    ds.timing = timing;
    machine.addProcess(std::make_unique<DividerSpy>(ds), 1);

    machine.addProcess(makeBenchmark("gobmk", 11), 2);
    machine.addProcess(makeBenchmark("sjeng", 12), 3);

    CCAuditor auditor(machine);
    const AuditKey key = requestAuditKey(true);
    auditor.monitorBus(key, 0);
    auditor.monitorDivider(key, 1, 0);
    AuditDaemon daemon(machine, auditor);
    machine.runQuanta(6);

    EXPECT_FALSE(daemon.analyzeContention(0).detected) << "bus";
    EXPECT_TRUE(daemon.analyzeContention(1).detected) << "divider";
}

} // namespace
} // namespace cchunter
