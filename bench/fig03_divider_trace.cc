/**
 * @file
 * Figure 3: average loop execution time (in CPU cycles) observed by
 * the spy's division-timing loop for the same 64-bit credit-card
 * number, on the integer-divider covert channel.  Contention on the
 * shared divider doubles the iteration time ('1').
 */

#include "bench/common.hh"

using namespace cchunter;
using namespace cchunter::bench;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions defaults;
    defaults.bandwidthBps = 1000.0;
    defaults.quantum = 250000000;
    defaults.quanta = 1;
    ScenarioOptions opts = optionsFromConfig(cfg, defaults);

    banner("Figure 3",
           "Integer Divider Covert Channel: spy's average loop "
           "execution time (CPU cycles)\nfor the same 64-bit message.");

    const DividerScenarioResult r = runDividerScenario(opts);

    printSeries(r.spySamples, "avg loop latency (cycles)", "sample");

    RunningStats ones, zeros;
    for (const auto& [slot, mean] : r.slotMeans)
        (r.sent.bitCyclic(slot) ? ones : zeros).add(mean);

    TableWriter t({"series", "value"});
    t.addRow({"message", r.sent.toString()});
    t.addRow({"decoded", r.decoded.toString()});
    t.addRow({"bit error rate", fmtDouble(r.bitErrorRate, 4)});
    t.addRow({"mean loop latency ('1')", fmtDouble(ones.mean(), 1)});
    t.addRow({"mean loop latency ('0')", fmtDouble(zeros.mean(), 1)});
    t.addRow({"contended / uncontended",
              fmtDouble(zeros.mean() > 0.0 ?
                            ones.mean() / zeros.mean() : 0.0, 2)});
    t.render(std::cout);

    std::printf("\npaper: iterations under contention take visibly "
                "longer (high plateau for '1',\nlow plateau for "
                "'0').\n");
    return 0;
}
