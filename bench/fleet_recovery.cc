/**
 * @file
 * Crash-recovery benchmark: what does crash safety cost, and how fast
 * is a restart?
 *
 * Three measurements over the same synthetic fleet, emitted as
 * BENCH_recovery.json:
 *
 *  - Checkpoint overhead: wall-clock of a persisted run (journal every
 *    batch + snapshot every checkpoint interval) versus the same run
 *    with persistence off, as a percentage.
 *  - Snapshot footprint: final snapshot bytes, total and per tenant.
 *  - Restore latency: the fleet is killed mid-run
 *    (simulateCrashAfterBatches), then the recovery load —
 *    snapshot + journal read, validate, merge — is sampled `trials`
 *    times for p50/p99 microseconds.
 *
 * Equivalence gate (always): the resumed run's incident stream hash
 * must equal the uninterrupted baseline's, or the bench exits 1 —
 * recovery speed means nothing if the answer changed.
 *
 * Arguments (key=value): tenants=16, quanta=8, quantum=2500000,
 * seed=1, shards=2, workers=0, interval=4, kill_after=0 (0 = half the
 * fleet), trials=32, dir=bench_recovery_state,
 * out=BENCH_recovery.json.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "fleet/fleet_auditor.hh"
#include "persist/recovery.hh"

using namespace cchunter;
using namespace cchunter::bench;

namespace
{

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const double rank =
        p * static_cast<double>(sorted.size() - 1) / 100.0;
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

struct RecoveryNumbers
{
    double baselineMs = 0.0;
    double persistedMs = 0.0;
    double overheadPct = 0.0;
    std::uint64_t snapshotBytes = 0;
    double bytesPerTenant = 0.0;
    std::uint64_t journalBytes = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t killAfter = 0;
    std::uint64_t restoredTenants = 0;
    double restoreP50Us = 0.0;
    double restoreP99Us = 0.0;
    std::size_t trials = 0;
    bool equivalent = false;
    std::uint64_t incidentHash = 0;
};

void
writeJson(const std::string& path, const SyntheticFleetOptions& fleet,
          std::size_t shards, std::size_t interval,
          const RecoveryNumbers& n)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"fleet_recovery\",\n");
    std::fprintf(f, "  \"tenants\": %zu,\n", fleet.tenants);
    std::fprintf(f, "  \"quanta\": %zu,\n", fleet.quanta);
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(fleet.seed));
    std::fprintf(f, "  \"shards\": %zu,\n", shards);
    std::fprintf(f, "  \"checkpoint_interval\": %zu,\n", interval);
    std::fprintf(f, "  \"baseline_wall_ms\": %.2f,\n", n.baselineMs);
    std::fprintf(f, "  \"persisted_wall_ms\": %.2f,\n", n.persistedMs);
    std::fprintf(f, "  \"checkpoint_overhead_pct\": %.2f,\n",
                 n.overheadPct);
    std::fprintf(f, "  \"snapshot_bytes\": %llu,\n",
                 static_cast<unsigned long long>(n.snapshotBytes));
    std::fprintf(f, "  \"snapshot_bytes_per_tenant\": %.1f,\n",
                 n.bytesPerTenant);
    std::fprintf(f, "  \"journal_bytes\": %llu,\n",
                 static_cast<unsigned long long>(n.journalBytes));
    std::fprintf(f, "  \"checkpoints\": %llu,\n",
                 static_cast<unsigned long long>(n.checkpoints));
    std::fprintf(f, "  \"kill_after_batches\": %llu,\n",
                 static_cast<unsigned long long>(n.killAfter));
    std::fprintf(f, "  \"restored_tenants\": %llu,\n",
                 static_cast<unsigned long long>(n.restoredTenants));
    std::fprintf(f, "  \"restore_trials\": %zu,\n", n.trials);
    std::fprintf(f, "  \"restore_us_p50\": %.1f,\n", n.restoreP50Us);
    std::fprintf(f, "  \"restore_us_p99\": %.1f,\n", n.restoreP99Us);
    std::fprintf(f, "  \"equivalent\": %s,\n",
                 n.equivalent ? "true" : "false");
    std::fprintf(f, "  \"incident_hash\": \"0x%016llx\"\n",
                 static_cast<unsigned long long>(n.incidentHash));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    SyntheticFleetOptions fleet;
    fleet.tenants = cfg.getUint("tenants", 16);
    fleet.quanta = cfg.getUint("quanta", 8);
    fleet.quantum = cfg.getUint("quantum", 2500000);
    fleet.seed = cfg.getUint("seed", 1);
    const std::size_t shards = cfg.getUint("shards", 2);
    const auto workers =
        static_cast<std::size_t>(cfg.getUint("workers", 0));
    const std::size_t interval = cfg.getUint("interval", 4);
    std::uint64_t killAfter = cfg.getUint("kill_after", 0);
    const std::size_t trials =
        static_cast<std::size_t>(cfg.getUint("trials", 32));
    const std::string dir =
        cfg.getString("dir", "bench_recovery_state");
    const std::string out =
        cfg.getString("out", "BENCH_recovery.json");
    if (killAfter == 0)
        killAfter = fleet.tenants / 2;

    banner("Fleet crash recovery: overhead, footprint, restore "
           "latency",
           "A persisted fleet run versus a bare one, then a "
           "kill-and-resume whose incident stream must be "
           "byte-identical to the uninterrupted baseline.");

    const TenantRegistry registry = TenantRegistry::synthetic(fleet);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    const auto timedRun = [&](const FleetAuditParams& params,
                              double& wallMs) {
        FleetAuditor auditor(registry, params);
        const auto start = std::chrono::steady_clock::now();
        FleetAuditReport report = auditor.run();
        wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
        return report;
    };

    RecoveryNumbers n;
    n.killAfter = killAfter;
    n.trials = trials;

    // 1. Baseline: persistence off.
    FleetAuditParams bare;
    bare.shards = shards;
    bare.workerThreads = workers;
    const FleetAuditReport baseline = timedRun(bare, n.baselineMs);
    const std::uint64_t baselineHash = baseline.incidents.streamHash();

    // 2. Persisted run: journal every batch, checkpoint on interval.
    FleetAuditParams persisted = bare;
    persisted.persist.dir = dir;
    persisted.persist.checkpointIntervalBatches = interval;
    const FleetAuditReport withPersist =
        timedRun(persisted, n.persistedMs);
    n.overheadPct = n.baselineMs > 0.0
                        ? 100.0 * (n.persistedMs - n.baselineMs) /
                              n.baselineMs
                        : 0.0;
    n.snapshotBytes = withPersist.persist.lastSnapshotBytes;
    n.bytesPerTenant =
        static_cast<double>(n.snapshotBytes) /
        static_cast<double>(std::max<std::size_t>(1, fleet.tenants));
    n.journalBytes = withPersist.persist.journalBytes;
    n.checkpoints = withPersist.persist.checkpointsWritten;

    // 3. Kill mid-run, then sample the recovery load.
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    FleetAuditParams killed = persisted;
    killed.simulateCrashAfterBatches = killAfter;
    double crashMs = 0.0;
    const FleetAuditReport crashReport = timedRun(killed, crashMs);
    if (!crashReport.crashed) {
        std::fprintf(stderr, "FAIL: kill_after=%llu did not crash "
                             "the run\n",
                     static_cast<unsigned long long>(killAfter));
        return 1;
    }

    const std::uint64_t fingerprint =
        persist::registryFingerprint(registry);
    std::vector<double> restoreUs;
    restoreUs.reserve(trials);
    std::uint64_t restoredTenants = 0;
    for (std::size_t i = 0; i < trials; ++i) {
        persist::PersistStats stats;
        persist::PersistPolicy policy = persisted.persist;
        const auto start = std::chrono::steady_clock::now();
        const persist::RecoveredFleetState state =
            persist::recoverFleetState(policy, fingerprint, stats);
        restoreUs.push_back(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - start)
                .count());
        restoredTenants = state.batches.size();
    }
    n.restoredTenants = restoredTenants;
    n.restoreP50Us = percentile(restoreUs, 50.0);
    n.restoreP99Us = percentile(restoreUs, 99.0);

    // 4. Resume and gate on equivalence.
    FleetAuditParams resume = persisted;
    resume.persist.resume = true;
    double resumeMs = 0.0;
    const FleetAuditReport resumed = timedRun(resume, resumeMs);
    n.incidentHash = resumed.incidents.streamHash();
    n.equivalent = n.incidentHash == baselineHash &&
                   withPersist.incidents.streamHash() == baselineHash;

    TableWriter t({"metric", "value"});
    t.addRow({"baseline wall ms", fmtDouble(n.baselineMs, 1)});
    t.addRow({"persisted wall ms", fmtDouble(n.persistedMs, 1)});
    t.addRow({"checkpoint overhead %", fmtDouble(n.overheadPct, 2)});
    t.addRow({"snapshot bytes", std::to_string(n.snapshotBytes)});
    t.addRow({"bytes / tenant", fmtDouble(n.bytesPerTenant, 1)});
    t.addRow({"journal bytes", std::to_string(n.journalBytes)});
    t.addRow({"kill after batches", std::to_string(n.killAfter)});
    t.addRow({"restored tenants", std::to_string(n.restoredTenants)});
    t.addRow({"restore us p50", fmtDouble(n.restoreP50Us, 1)});
    t.addRow({"restore us p99", fmtDouble(n.restoreP99Us, 1)});
    t.addRow({"resume wall ms", fmtDouble(resumeMs, 1)});
    t.addRow({"equivalent", n.equivalent ? "yes" : "NO"});
    t.render(std::cout);

    writeJson(out, fleet, shards, interval, n);
    std::filesystem::remove_all(dir);

    if (!n.equivalent) {
        std::fprintf(stderr, "FAIL: resumed incident stream differs "
                             "from the uninterrupted baseline\n");
        return 1;
    }
    return 0;
}
