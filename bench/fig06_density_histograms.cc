/**
 * @file
 * Figure 6: event density histograms for the covert timing channels on
 * the memory bus (Δt = 100,000 cycles; burst cluster near bin 20) and
 * the integer division unit (Δt = 500 cycles; burst cluster between
 * bins 84 and 105 with its peak around bin 96).
 */

#include "bench/common.hh"

using namespace cchunter;
using namespace cchunter::bench;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions defaults;
    defaults.bandwidthBps = 1000.0;
    defaults.quantum = 250000000;
    defaults.quanta = 1;
    ScenarioOptions opts = optionsFromConfig(cfg, defaults);

    banner("Figure 6",
           "Event density histograms during covert transmission "
           "(one 0.1 s OS time quantum).");

    const BusScenarioResult bus = runBusScenario(opts);
    Histogram bus_hist(128);
    for (const auto& h : bus.quantaHistograms)
        bus_hist.merge(h);
    printDensityHistogram(bus_hist,
                          "(a) memory bus: lock density "
                          "(dt = 100k cycles)",
                          "bus locks per dt", 32);
    std::printf("  burst peak bin: %zu (paper: ~20), likelihood "
                "ratio: %.3f (paper: > 0.9)\n\n",
                bus.verdict.combined.burstPeakBin,
                bus.verdict.combined.likelihoodRatio);

    const DividerScenarioResult div = runDividerScenario(opts);
    Histogram div_hist(128);
    for (const auto& h : div.quantaHistograms)
        div_hist.merge(h);
    printDensityHistogram(div_hist,
                          "(b) integer divider: contention density "
                          "(dt = 500 cycles)",
                          "wait conflicts per dt", 120);
    std::printf("  burst cluster: bins %zu-%zu, peak %zu (paper: "
                "84-105, peak ~96); likelihood ratio: %.3f\n",
                div.verdict.combined.burstFirstBin,
                div.verdict.combined.burstLastBin,
                div.verdict.combined.burstPeakBin,
                div.verdict.combined.likelihoodRatio);
    return 0;
}
