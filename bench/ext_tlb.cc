/**
 * @file
 * Extension: the shared-TLB covert channel, raw and under the
 * link-layer protocol adversary (channels/protocol.hh).
 *
 * The fifth monitor unit registered with the unit registry: SMT
 * siblings prime and probe the per-core TLB's sets, and the labelled
 * displacement train oscillates with a period near the channel set
 * count — the cache channel's signature on a different structure.  The
 * sweep reports, per raw bandwidth, the oscillation confidence
 * (dominant correlogram peak) and the wire/payload error rates with
 * the protocol off and on: the protocol's preamble, retransmission
 * voting and Hamming(7,4) ECC buy payload reliability at a 12x wire
 * expansion, so below some raw bandwidth the coded burst no longer
 * fits the observation window and the payload is lost even though the
 * channel itself is still detected.
 */

#include "bench/common.hh"

using namespace cchunter;
using namespace cchunter::bench;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions defaults;
    defaults.quantum = 25000000; // 10 ms
    defaults.quanta = 10;
    const ScenarioOptions base = optionsFromConfig(cfg, defaults);

    banner("Extension: shared-TLB channel +- protocol coding",
           "TLB prime/probe between SMT siblings, judged by the "
           "oscillation path.  Protocol runs\ncode one payload byte "
           "into a 96-bit burst (preamble + 3x retransmission + "
           "Hamming(7,4)).");

    const std::vector<double> bandwidths =
        cfg.has("bandwidth") ? std::vector<double>{base.bandwidthBps}
                             : std::vector<double>{500.0, 1000.0,
                                                   2000.0, 5000.0};

    TableWriter t({"bps", "protocol", "detected", "peak", "lag",
                   "wire BER", "payload BER"});
    bool allDetected = true;
    for (const double bps : bandwidths) {
        for (const bool coded : {false, true}) {
            ScenarioOptions opts = base;
            opts.bandwidthBps = bps;
            if (coded) {
                opts.protocol.enabled = true;
                // One byte: a single coded burst per wire pass.
                opts.message = Message::fromBits(
                    {true, false, true, true, false, false, true,
                     false});
            }
            const TlbScenarioResult r = runTlbScenario(opts);
            allDetected = allDetected && r.verdict.detected;
            t.addRow({fmtDouble(bps, 0), coded ? "on" : "off",
                      r.verdict.detected ? "yes" : "NO",
                      fmtDouble(r.verdict.analysis.dominantValue, 3),
                      fmtInt(static_cast<long long>(
                          r.verdict.analysis.dominantLag)),
                      fmtDouble(r.bitErrorRate, 3),
                      fmtDouble(r.payloadBitErrorRate, 3)});
        }
    }
    t.render(std::cout);

    std::printf("\ncontrol: a benign pair audited on the TLB must stay "
                "clean.\n");
    OnlineAuditOptions benign;
    benign.workload = AuditedWorkload::BenignPair;
    benign.benignUnits = BenignAuditUnits::TlbBus;
    benign.scenario = base;
    const OnlineAuditResult br = runOnlineAudit(benign);
    bool falseAlarm = false;
    for (const UnitOutcome& outcome : br.finalVerdicts)
        falseAlarm = falseAlarm || outcome.detected;
    std::printf("benign mcf+gobmk TLB/bus verdicts: %s\n",
                falseAlarm ? "FALSE ALARM" : "clean");
    return (allDetected && !falseAlarm) ? 0 : 1;
}
