/**
 * @file
 * Table I: area, power and latency estimates of the CC-Auditor
 * hardware (histogram buffers, registers, conflict-miss detector),
 * from the Cacti-like analytical cost model.
 */

#include "bench/common.hh"
#include "cost/auditor_cost.hh"

using namespace cchunter;
using namespace cchunter::bench;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    AuditorCostConfig config;
    config.cacheBlocks = cfg.getUint("cache_blocks", 4096);
    config.histogramEntries = cfg.getUint("hist_entries", 128);
    config.vectorRegisterBytes = cfg.getUint("vector_bytes", 128);

    banner("Table I",
           "Area, power and latency estimates of the CC-Auditor "
           "(paper values from Cacti 5.3).");

    const AuditorCostReport r = estimateAuditorCost(config);

    TableWriter t({"", "Histogram Buffers", "Registers",
                   "Conflict Miss Detector", "paper (H/R/C)"});
    t.addRow({"Area (mm^2)",
              fmtDouble(r.histogramBuffers.areaMm2, 4),
              fmtDouble(r.registers.areaMm2, 4),
              fmtDouble(r.conflictMissDetector.areaMm2, 4),
              "0.0028 / 0.0011 / 0.004"});
    t.addRow({"Power (mW)",
              fmtDouble(r.histogramBuffers.powerMw, 1),
              fmtDouble(r.registers.powerMw, 1),
              fmtDouble(r.conflictMissDetector.powerMw, 1),
              "2.8 / 0.8 / 5.4"});
    t.addRow({"Latency (ns)",
              fmtDouble(r.histogramBuffers.latencyNs, 2),
              fmtDouble(r.registers.latencyNs, 2),
              fmtDouble(r.conflictMissDetector.latencyNs, 2),
              "0.17 / 0.17 / 0.12"});
    t.render(std::cout);

    std::printf("\ncontext (paper section V-A1):\n");
    std::printf("  total area:   %.4f mm^2 = %.5f%% of a 263 mm^2 "
                "Intel i7 die (insignificant)\n",
                r.total().areaMm2, 100.0 * r.areaFractionOfI7());
    std::printf("  total power:  %.1f mW = %.5f%% of the i7's 130 W "
                "peak (a few milliwatts)\n",
                r.total().powerMw, 100.0 * r.powerFractionOfI7());
    std::printf("  worst latency: %.2f ns = %.0f%% of the 0.33 ns "
                "clock period at 3 GHz (sub-cycle)\n",
                r.total().latencyNs,
                100.0 * r.latencyOverClockPeriod());
    std::printf("  cache metadata: +%.1f%% L2 access latency "
                "(paper: ~1.5%%)\n",
                100.0 * r.cacheMetadataLatencyOverhead());
    return 0;
}
