/**
 * @file
 * Figure 5: illustration of an event train and its corresponding event
 * density histogram, including the Poisson reference a non-bursty
 * train follows.  Built from synthetic trains to mirror the paper's
 * didactic figure.
 */

#include <cmath>

#include "bench/common.hh"
#include "detect/burst_detector.hh"
#include "detect/event_density.hh"
#include "util/rng.hh"

using namespace cchunter;
using namespace cchunter::bench;

namespace
{

EventTrain
poissonTrain(double rate, Tick span, std::uint64_t seed)
{
    Rng rng(seed);
    EventTrain t(0, span);
    Tick now = 0;
    while (true) {
        now += static_cast<Tick>(rng.nextExponential(1.0 / rate)) + 1;
        if (now >= span)
            break;
        t.addEvent(now);
    }
    return t;
}

EventTrain
burstyTrain(double rate, Tick span, Tick burst_every, Tick burst_len,
            std::uint64_t seed)
{
    Rng rng(seed);
    EventTrain t(0, span);
    Tick now = 0;
    while (now < span) {
        const bool in_burst = (now % burst_every) < burst_len;
        const double r = in_burst ? rate * 40.0 : rate * 0.2;
        now += static_cast<Tick>(rng.nextExponential(1.0 / r)) + 1;
        if (now < span)
            t.addEvent(now);
    }
    return t;
}

void
show(const EventTrain& train, Tick dt, const char* name)
{
    const Histogram h = buildEventDensityHistogram(train, dt, 64);
    printDensityHistogram(h, name, "event density in dt", 40);
    BurstDetector det;
    const BurstAnalysis a = det.analyze(h);
    std::printf("  threshold density bin: %zu, likelihood ratio: %.3f, "
                "second distribution: %s\n\n",
                a.thresholdBin, a.likelihoodRatio,
                a.hasSecondDistribution ? "yes" : "no");
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const Tick span = cfg.getUint("span", 2000000);
    const Tick dt = cfg.getUint("dt", 2000);
    const std::uint64_t seed = cfg.getUint("seed", 1);

    banner("Figure 5",
           "Event train -> event density histogram.  A Poisson "
           "(non-bursty) train is unimodal;\na bursty train grows a "
           "second distribution in the right tail.");

    show(poissonTrain(0.001, span, seed),
         dt, "(a) Poisson train: unimodal density");
    show(burstyTrain(0.001, span, 100000, 12000, seed + 1),
         dt, "(b) bursty train: bimodal density");
    return 0;
}
