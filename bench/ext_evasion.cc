/**
 * @file
 * Extension: the evasion trade-off the paper's threat model argues
 * (section III).
 *
 * "It is impossible for a covert timing channel to just randomly
 * inflate conflict events or operate in noisy environments simply to
 * evade detection" — because the same decoys that blur CC-Hunter's
 * statistics corrupt the spy's decoding first.  The trojan here tries:
 * at increasing decoy-lock rates during its dormant periods, the
 * likelihood ratio stays decisive while the channel's bit error rate
 * climbs toward uselessness; by the time the histogram finally looks
 * like wall-to-wall noise the "channel" no longer transfers data.
 */

#include <algorithm>

#include "bench/common.hh"

using namespace cchunter;
using namespace cchunter::bench;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions base;
    base.bandwidthBps = 1000.0;
    base.quantum = 25000000;
    base.quanta = cfg.getUint("quanta", 6);
    base.seed = cfg.getUint("seed", 1);

    banner("Extension: evasion by random conflict inflation",
           "Decoy locks during dormant periods vs detection and "
           "channel reliability\n(signalling locks are paced every "
           "5000 cycles).");

    struct Point
    {
        const char* name;
        Cycles decoyPeriod; // 0 = honest channel
    };
    const Point points[] = {
        {"no decoys", 0},
        {"sparse decoys (1/50k)", 50000},
        {"moderate decoys (1/20k)", 20000},
        {"heavy decoys (1/10k)", 10000},
        {"decoys at signal rate (1/5k)", 5000},
    };

    TableWriter t({"evasion attempt", "locks", "likelihood",
                   "detected", "spy BER", "channel usable"});
    for (const auto& pt : points) {
        ScenarioOptions o = base;
        o.busEvasionPeriod = pt.decoyPeriod;
        const BusScenarioResult r = runBusScenario(o);
        const double lr =
            std::max(r.verdict.combined.likelihoodRatio,
                     r.verdict.recurrence.maxLikelihoodRatio);
        t.addRow({pt.name,
                  fmtInt(static_cast<long long>(r.lockEvents)),
                  fmtDouble(lr, 3),
                  r.verdict.detected ? "yes" : "no",
                  fmtDouble(r.bitErrorRate, 3),
                  r.bitErrorRate < 0.1 ? "yes" : "NO"});
    }
    t.render(std::cout);
    std::printf("\nthe trade-off the paper predicts: decoys corrupt "
                "the spy (BER -> ~0.5) long before\nthe detector loses "
                "the recurrent-burst signature.\n");
    return 0;
}
