/**
 * @file
 * Figure 2: average latency per memory access (in CPU cycles) observed
 * by the spy while a randomly chosen 64-bit credit-card number is
 * transmitted over the memory-bus covert channel.  A contended bus
 * inflates the spy's miss latency ('1'); an idle bus leaves it at the
 * baseline ('0').
 */

#include "bench/common.hh"

using namespace cchunter;
using namespace cchunter::bench;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions defaults;
    defaults.bandwidthBps = 1000.0;
    defaults.quantum = 250000000; // the paper's 0.1 s OS quantum
    defaults.quanta = 1;          // 100 bits: covers the 64-bit message
    ScenarioOptions opts = optionsFromConfig(cfg, defaults);

    banner("Figure 2",
           "Memory Bus Covert Channel: spy's average latency per memory "
           "access (CPU cycles)\nwhile the trojan transmits a random "
           "64-bit credit-card number.");

    const BusScenarioResult r = runBusScenario(opts);

    printSeries(r.spySamples, "avg latency per access (cycles)",
                "sample");

    RunningStats ones, zeros;
    for (const auto& [slot, mean] : r.slotMeans)
        (r.sent.bitCyclic(slot) ? ones : zeros).add(mean);

    TableWriter t({"series", "value"});
    t.addRow({"message", r.sent.toString()});
    t.addRow({"decoded", r.decoded.toString()});
    t.addRow({"bit error rate", fmtDouble(r.bitErrorRate, 4)});
    t.addRow({"samples", fmtInt(static_cast<long long>(
                  r.spySamples.size()))});
    t.addRow({"mean latency ('1' bits)", fmtDouble(ones.mean(), 1)});
    t.addRow({"mean latency ('0' bits)", fmtDouble(zeros.mean(), 1)});
    t.addRow({"contended / uncontended",
              fmtDouble(zeros.mean() > 0.0 ?
                            ones.mean() / zeros.mean() : 0.0, 2)});
    t.render(std::cout);

    std::printf("\npaper: contended ~3x the uncontended latency; the "
                "spy separates '1' from '0'\nby the average access "
                "time.\n");
    return 0;
}
