/**
 * @file
 * Headline result (paper sections VI-A..D): CC-Hunter detects the
 * covert timing channels on all three shared hardware resources and
 * raises zero false alarms on the benign benchmark pairs.
 */

#include "bench/common.hh"
#include "workloads/suites.hh"

using namespace cchunter;
using namespace cchunter::bench;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions opts;
    opts.bandwidthBps = cfg.getDouble("bandwidth", 1000.0);
    opts.quantum = cfg.getUint("quantum", 25000000);
    opts.quanta = cfg.getUint("quanta", 8);
    opts.seed = cfg.getUint("seed", 1);

    banner("Detection summary",
           "All covert channels must be detected; all benign pairs "
           "must stay clean.");

    TableWriter t({"scenario", "resource", "evidence", "verdict",
                   "BER"});
    unsigned detected = 0, channels = 0, alarms = 0;
    std::size_t benign_checks = 0;

    {
        const auto r = runBusScenario(opts);
        ++channels;
        detected += r.verdict.detected;
        t.addRow({"covert: bus-lock channel", "memory bus/QPI",
                  "LR=" + fmtDouble(
                      r.verdict.combined.likelihoodRatio, 3) +
                      " peak-bin=" + std::to_string(
                          r.verdict.combined.burstPeakBin),
                  r.verdict.detected ? "DETECTED" : "missed",
                  fmtDouble(r.bitErrorRate, 3)});
    }
    {
        const auto r = runDividerScenario(opts);
        ++channels;
        detected += r.verdict.detected;
        t.addRow({"covert: SMT divider channel", "integer divider",
                  "LR=" + fmtDouble(
                      r.verdict.combined.likelihoodRatio, 3) +
                      " peak-bin=" + std::to_string(
                          r.verdict.combined.burstPeakBin),
                  r.verdict.detected ? "DETECTED" : "missed",
                  fmtDouble(r.bitErrorRate, 3)});
    }
    {
        const auto r = runCacheScenario(opts);
        ++channels;
        detected += r.verdict.detected;
        t.addRow({"covert: prime+probe channel", "shared L2 cache",
                  "lag=" + std::to_string(
                      r.verdict.analysis.dominantLag) +
                      " peak=" + fmtDouble(
                          r.verdict.analysis.dominantValue, 3),
                  r.verdict.detected ? "DETECTED" : "missed",
                  fmtDouble(r.bitErrorRate, 3)});
    }

    ScenarioOptions benign = opts;
    benign.quantum = cfg.getUint("benign_quantum", 125000000);
    benign.quanta = cfg.getUint("benign_quanta", 3);
    std::size_t pair_count = 0;
    for (const auto& [a, b] : falseAlarmPairs()) {
        if (pair_count++ >= cfg.getUint("pairs", 5))
            break;
        const auto r = runBenignPair(a, b, benign);
        benign_checks += 3;
        alarms += r.busVerdict.detected + r.dividerVerdict.detected +
                  r.cacheVerdict.detected;
        t.addRow({"benign: " + a + "+" + b, "bus/divider/L2",
                  "LR=" + fmtDouble(
                      r.busVerdict.combined.likelihoodRatio, 2) +
                      "/" + fmtDouble(
                          r.dividerVerdict.combined.likelihoodRatio,
                          2) +
                      " peak=" + fmtDouble(
                          r.cacheVerdict.analysis.dominantValue, 2),
                  (r.busVerdict.detected || r.dividerVerdict.detected ||
                   r.cacheVerdict.detected)
                      ? "FALSE ALARM"
                      : "clean",
                  "-"});
    }

    t.render(std::cout);
    std::printf("\nchannels detected: %u/%u, false alarms: %u/%zu "
                "(paper: all detected, zero false alarms)\n",
                detected, channels, alarms, benign_checks);
    return (detected == channels && alarms == 0) ? 0 : 1;
}
