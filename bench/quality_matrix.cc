/**
 * @file
 * Detection-quality matrix: the ground-truth-labelled corpus scored
 * end to end, with per-unit confusion matrices at the paper's 0.5
 * decision threshold, full ROC curves with AUC, and a
 * confidence-calibration table.  Emits BENCH_quality.json and exits
 * non-zero when the accuracy regression gate fails, so CI tracks
 * detection quality the same way it tracks correctness.
 *
 * Arguments (key=value): seed, quanta, quantum, threads
 * (analysis fan-out; the JSON must not depend on it), buckets
 * (calibration buckets), out=<path>, backend=cchunter|indicator2
 * (headline decision backend; both are always swept for the evasion
 * head-to-head regardless).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "eval/quality_gate.hh"

using namespace cchunter;
using namespace cchunter::bench;

namespace
{

/**
 * Checked-in AUC baseline the gate regresses against (measured on the
 * default corpus at seed 1; see EXPERIMENTS.md), keyed by registry
 * unit name so it survives enum renumbering.  Every unit — including
 * the TLB channel added with the unit registry — separates its
 * positives from its negatives perfectly across the whole grid.
 */
const std::vector<std::pair<std::string, double>> kBaselineAuc = {
    {"bus", 1.0},      {"divider", 1.0}, {"multiplier", 1.0},
    {"cache", 1.0},    {"tlb", 1.0},
};

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);

    CorpusOptions corpusOptions;
    corpusOptions.seed = cfg.getUint("seed", 1);
    corpusOptions.quanta = cfg.getUint("quanta", corpusOptions.quanta);
    corpusOptions.quantum =
        cfg.getUint("quantum", corpusOptions.quantum);

    QualityScorerOptions scorer;
    scorer.analysisThreads = cfg.getUint("threads", 1);
    scorer.calibrationBuckets = cfg.getUint("buckets", 5);
    scorer.thresholds.backend = detectBackendFromName(
        cfg.getString("backend", "cchunter"));
    const std::string out = cfg.getString("out", "BENCH_quality.json");

    banner("Detection quality: labelled corpus, ROC/AUC, gate",
           "Every clean channel must be caught at the paper's 0.5 "
           "threshold, no benign pair may alarm, per-unit AUC must "
           "hold the checked-in baseline, and the indicator2 backend "
           "must win the evasion head-to-head.");

    const std::vector<LabelledScenario> corpus =
        buildLabelledCorpus(corpusOptions);
    std::printf("corpus: %zu labelled runs\n", corpus.size());
    const QualityReport report = scoreCorpus(corpus, scorer);

    TableWriter units({"unit", "clean tp/fn", "degraded tp/fn",
                       "fp/tn", "clean TPR", "FPR", "AUC", "AUC2"});
    for (const UnitQuality& q : report.units) {
        units.addRow({monitorTargetName(q.unit),
                      std::to_string(q.cleanTp) + "/" +
                          std::to_string(q.cleanFn),
                      std::to_string(q.degradedTp) + "/" +
                          std::to_string(q.degradedFn),
                      std::to_string(q.fp) + "/" +
                          std::to_string(q.tn),
                      fmtDouble(q.cleanTpr()),
                      fmtDouble(q.falsePositiveRate()),
                      fmtDouble(q.auc), fmtDouble(q.auc2)});
    }
    units.render(std::cout);

    // The arms race: pooled per-strategy AUC of each backend over the
    // evasive positives against the full negative set.
    TableWriter evasion({"strategy", "positives", "classic AUC",
                         "indicator2 AUC", "margin"});
    for (const EvasionStrategy strategy :
         {EvasionStrategy::RandomGaps, EvasionStrategy::DutyCycle,
          EvasionStrategy::LowAndSlow}) {
        const EvasionQuality* classic = nullptr;
        const EvasionQuality* second = nullptr;
        for (const EvasionQuality& q : report.evasion) {
            if (q.strategy != strategy)
                continue;
            (q.backend == DetectBackend::Indicator2 ? second
                                                    : classic) = &q;
        }
        if (!classic || !second)
            continue;
        evasion.addRow({evasionStrategyName(strategy),
                        std::to_string(classic->positives),
                        fmtDouble(classic->auc),
                        fmtDouble(second->auc),
                        fmtDouble(second->auc - classic->auc)});
    }
    std::printf("\nevasion head-to-head (pooled over units):\n");
    evasion.render(std::cout);

    TableWriter calib({"confidence", "alarms", "true alarms",
                       "mean conf", "precision"});
    for (const CalibrationBucket& b : report.calibration) {
        if (!b.alarms)
            continue;
        calib.addRow({"[" + fmtDouble(b.lo, 2) + ", " +
                          fmtDouble(b.hi, 2) + ")",
                      std::to_string(b.alarms),
                      std::to_string(b.trueAlarms),
                      fmtDouble(b.meanConfidence()),
                      fmtDouble(b.precision())});
    }
    std::printf("\nconfidence calibration (non-empty buckets):\n");
    calib.render(std::cout);

    std::FILE* f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }
    const std::string json = report.toJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());

    QualityGateParams gate;
    gate.baselineAuc = kBaselineAuc;
    const QualityGateResult verdict =
        evaluateQualityGate(report, gate);
    if (!verdict.pass) {
        std::fprintf(stderr, "\nQUALITY GATE FAILED:\n");
        for (const std::string& failure : verdict.failures)
            std::fprintf(stderr, "  - %s\n", failure.c_str());
        return 1;
    }
    std::printf("\nquality gate: PASS\n");
    return 0;
}
