/**
 * @file
 * Shared plumbing for the per-figure benchmark harnesses: command-line
 * option parsing into ScenarioOptions and terminal rendering of the
 * paper's figure shapes.
 *
 * Every harness accepts "key=value" arguments, e.g.:
 *   bench_fig10_bandwidth_sweep quanta=8 seed=3 quantum=250000000
 */

#ifndef CCHUNTER_BENCH_COMMON_HH
#define CCHUNTER_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/experiment.hh"
#include "util/ascii_plot.hh"
#include "util/config.hh"
#include "util/histogram.hh"
#include "util/stats.hh"
#include "util/table_writer.hh"

namespace cchunter::bench
{

/** Populate scenario options from key=value arguments. */
inline ScenarioOptions
optionsFromConfig(const Config& cfg, ScenarioOptions defaults = {})
{
    ScenarioOptions o = defaults;
    o.bandwidthBps = cfg.getDouble("bandwidth", o.bandwidthBps);
    o.quanta = cfg.getUint("quanta", o.quanta);
    o.quantum = cfg.getUint("quantum", o.quantum);
    o.seed = cfg.getUint("seed", o.seed);
    o.noiseProcesses = static_cast<unsigned>(
        cfg.getUint("noise", o.noiseProcesses));
    o.noiseIntensity = cfg.getDouble("noise_intensity",
                                     o.noiseIntensity);
    o.maxSignalTicks = cfg.getUint("signal_ticks", o.maxSignalTicks);
    o.channelSets = cfg.getUint("sets", o.channelSets);
    o.cacheNoiseEvery = cfg.getUint("cache_noise_every",
                                    o.cacheNoiseEvery);
    return o;
}

/** Print a figure banner. */
inline void
banner(const std::string& figure, const std::string& caption)
{
    std::printf("\n==== %s ====\n%s\n\n", figure.c_str(),
                caption.c_str());
}

/** Render an event-density histogram like the paper's figures 6/10. */
inline void
printDensityHistogram(const Histogram& hist, const std::string& title,
                      const std::string& x_label,
                      std::size_t max_bin = 127)
{
    std::vector<double> bins;
    max_bin = std::min(max_bin, hist.numBins() - 1);
    for (std::size_t i = 0; i <= max_bin; ++i)
        bins.push_back(static_cast<double>(hist.bin(i)));
    PlotOptions opts;
    opts.title = title;
    opts.xLabel = x_label;
    asciiBars(std::cout, bins, opts);
    std::printf("  non-zero bins: %s\n", hist.toString().c_str());
}

/** Render an autocorrelogram like the paper's figures 8b/11/13. */
inline void
printCorrelogram(const std::vector<double>& correlogram,
                 const std::string& title)
{
    PlotOptions opts;
    opts.title = title;
    opts.xLabel = "lag";
    opts.yFromZero = true;
    asciiPlot(std::cout, correlogram, opts);
}

/** Render a sample series like figures 2/3/7. */
inline void
printSeries(const std::vector<double>& series, const std::string& title,
            const std::string& x_label)
{
    PlotOptions opts;
    opts.title = title;
    opts.xLabel = x_label;
    asciiPlot(std::cout, series, opts);
}

} // namespace cchunter::bench

#endif // CCHUNTER_BENCH_COMMON_HH
