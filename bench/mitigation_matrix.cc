/**
 * @file
 * Mitigation matrix: residual channel bandwidth and benign performance
 * tax for every monitor unit at every rung of the response ladder,
 * emitted as BENCH_mitigation.json.
 *
 * For each registry unit the trojan/spy pair is re-run under observe,
 * rate-limit, temporal-partition and quarantine, with the link-layer
 * protocol decoder as ground truth for what the receiver still gets
 * (residual bps, payload BER).  A benign pair prices each rung's
 * collateral slowdown.  Everything runs on the simulated clock, so the
 * numbers are deterministic for a seed — identical across machines.
 *
 * Gates (exit 1 on violation):
 *  - quarantine must cut every unit's bandwidth by >= quarantine_gate
 *    (default 0.90) relative to the unmitigated run;
 *  - the benign tax must stay under ratelimit_tax_max (default 0.60)
 *    at rate-limit and partition_tax_max (default 0.80) at
 *    temporal-partition.  (Quarantine's tax is definitionally ~1 and
 *    is reported, not gated.)
 *
 * The flat "metrics" object in the JSON (reduction.* higher-better,
 * tax.* lower-better) is what tools/check_bench_regression.py
 * --metrics compares against the checked-in baseline.
 *
 * Arguments (key=value): quanta=8, quantum=2500000, seed=1,
 * contention_bps=10000, cache_bps=1000, quarantine_gate=0.90,
 * ratelimit_tax_max=0.60, partition_tax_max=0.80,
 * out=BENCH_mitigation.json.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "respond/residual.hh"
#include "units/unit_registry.hh"

using namespace cchunter;
using namespace cchunter::bench;

namespace
{

constexpr ResponseLevel kLevels[] = {
    ResponseLevel::Observe,
    ResponseLevel::RateLimit,
    ResponseLevel::TemporalPartition,
    ResponseLevel::Quarantine,
};

struct UnitRow
{
    std::string unit;
    ResidualProbe probes[4]; //!< indexed by ResponseLevel
    double reduction[4] = {0.0, 0.0, 0.0, 0.0};
};

void
writeJson(const std::string& path, std::size_t quanta,
          std::uint64_t seed, const std::vector<UnitRow>& rows,
          const TaxProbe (&taxes)[4], double quarantineGate,
          double rateLimitTaxMax, double partitionTaxMax, bool pass)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"mitigation_matrix\",\n");
    std::fprintf(f, "  \"quanta\": %zu,\n", quanta);
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed));
    std::fprintf(f, "  \"units\": [\n");
    for (std::size_t u = 0; u < rows.size(); ++u) {
        const UnitRow& row = rows[u];
        std::fprintf(f, "    {\n      \"unit\": \"%s\",\n",
                     row.unit.c_str());
        std::fprintf(f, "      \"levels\": [\n");
        for (std::size_t l = 0; l < 4; ++l) {
            const ResidualProbe& p = row.probes[l];
            std::fprintf(
                f,
                "        {\"level\": \"%s\", \"residual_bps\": %.3f, "
                "\"reduction\": %.4f, \"payload_ber\": %.4f, "
                "\"wire_bits\": %llu, \"detected\": %s}%s\n",
                responseLevelName(kLevels[l]), p.effectiveBandwidthBps,
                row.reduction[l], p.payloadBitErrorRate,
                static_cast<unsigned long long>(p.wireBitsDecoded),
                p.detected ? "true" : "false", l + 1 < 4 ? "," : "");
        }
        std::fprintf(f, "      ]\n    }%s\n",
                     u + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"tax\": [\n");
    for (std::size_t l = 0; l < 4; ++l)
        std::fprintf(f,
                     "    {\"level\": \"%s\", \"tax\": %.4f, "
                     "\"baseline_actions\": %llu, "
                     "\"taxed_actions\": %llu}%s\n",
                     responseLevelName(kLevels[l]), taxes[l].tax,
                     static_cast<unsigned long long>(
                         taxes[l].baselineActions),
                     static_cast<unsigned long long>(
                         taxes[l].taxedActions),
                     l + 1 < 4 ? "," : "");
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"gates\": {\"quarantine_reduction_min\": %.2f, "
                    "\"ratelimit_tax_max\": %.2f, "
                    "\"partition_tax_max\": %.2f},\n",
                 quarantineGate, rateLimitTaxMax, partitionTaxMax);
    // Flat gated metrics for check_bench_regression.py --metrics:
    // reduction.* must not fall, tax.* must not rise.
    std::fprintf(f, "  \"metrics\": {\n");
    for (const UnitRow& row : rows)
        for (std::size_t l = 1; l < 4; ++l)
            std::fprintf(f, "    \"reduction.%s.%s\": %.4f,\n",
                         row.unit.c_str(),
                         responseLevelName(kLevels[l]),
                         row.reduction[l]);
    std::fprintf(f, "    \"tax.rate-limit\": %.4f,\n", taxes[1].tax);
    std::fprintf(f, "    \"tax.temporal-partition\": %.4f\n",
                 taxes[2].tax);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"pass\": %s\n", pass ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t quanta = cfg.getUint("quanta", 8);
    const Tick quantum = cfg.getUint("quantum", 2500000);
    const std::uint64_t seed = cfg.getUint("seed", 1);
    const double contentionBps =
        cfg.getDouble("contention_bps", 10000.0);
    const double cacheBps = cfg.getDouble("cache_bps", 1000.0);
    const double quarantineGate =
        cfg.getDouble("quarantine_gate", 0.90);
    const double rateLimitTaxMax =
        cfg.getDouble("ratelimit_tax_max", 0.60);
    const double partitionTaxMax =
        cfg.getDouble("partition_tax_max", 0.80);
    const std::string out =
        cfg.getString("out", "BENCH_mitigation.json");

    banner("Mitigation matrix: residual bandwidth x response ladder",
           "Every monitor unit's trojan/spy pair re-run under each "
           "response level, protocol decode as ground truth, plus the "
           "benign pair's performance tax per rung.");

    const auto baseOptions = [&](const UnitDescriptor& unit) {
        OnlineAuditOptions options;
        options.scenario.quanta = quanta;
        options.scenario.quantum = quantum;
        options.scenario.seed = seed;
        options.scenario.noiseProcesses = 0;
        options.scenario.bandwidthBps =
            unit.policy == AlarmKind::Oscillation ? cacheBps
                                                  : contentionBps;
        options.online.clusteringIntervalQuanta = 4;
        return options;
    };

    const auto planAt = [](ResponseLevel level) {
        ResponsePlan plan;
        plan.level = level;
        return plan;
    };

    std::vector<UnitRow> rows;
    bool pass = true;
    std::vector<std::string> violations;
    for (const UnitDescriptor& unit :
         UnitRegistry::instance().descriptors()) {
        UnitRow row;
        row.unit = unit.name;
        for (std::size_t l = 0; l < 4; ++l)
            row.probes[l] =
                probeResidualBandwidth(unit.workload, baseOptions(unit),
                                       planAt(kLevels[l]));
        const double baseBps = row.probes[0].effectiveBandwidthBps;
        for (std::size_t l = 0; l < 4; ++l)
            row.reduction[l] = bandwidthReduction(
                baseBps, row.probes[l].effectiveBandwidthBps);
        if (row.reduction[3] < quarantineGate) {
            pass = false;
            violations.push_back(
                row.unit + ": quarantine reduction " +
                fmtDouble(row.reduction[3], 3) + " < gate " +
                fmtDouble(quarantineGate, 2));
        }
        rows.push_back(std::move(row));
    }

    // The benign pair is unit-independent; one tax probe per rung.
    OnlineAuditOptions benign;
    benign.scenario.quanta = quanta;
    benign.scenario.quantum = quantum;
    benign.scenario.seed = seed;
    benign.scenario.noiseProcesses = 0;
    benign.scenario.bandwidthBps = contentionBps;
    benign.online.clusteringIntervalQuanta = 4;
    TaxProbe taxes[4];
    for (std::size_t l = 0; l < 4; ++l)
        taxes[l] = measureBenignTax(benign, planAt(kLevels[l]));
    if (taxes[1].tax > rateLimitTaxMax) {
        pass = false;
        violations.push_back("rate-limit tax " +
                             fmtDouble(taxes[1].tax, 3) + " > ceiling " +
                             fmtDouble(rateLimitTaxMax, 2));
    }
    if (taxes[2].tax > partitionTaxMax) {
        pass = false;
        violations.push_back("temporal-partition tax " +
                             fmtDouble(taxes[2].tax, 3) +
                             " > ceiling " +
                             fmtDouble(partitionTaxMax, 2));
    }

    TableWriter t({"unit", "level", "residual bps", "reduction",
                   "payload BER", "detected"});
    for (const UnitRow& row : rows)
        for (std::size_t l = 0; l < 4; ++l)
            t.addRow({row.unit, responseLevelName(kLevels[l]),
                      fmtDouble(
                          row.probes[l].effectiveBandwidthBps, 1),
                      fmtDouble(row.reduction[l], 3),
                      fmtDouble(row.probes[l].payloadBitErrorRate, 3),
                      row.probes[l].detected ? "yes" : "no"});
    t.render(std::cout);

    TableWriter taxTable({"level", "benign tax", "baseline actions",
                          "taxed actions"});
    for (std::size_t l = 0; l < 4; ++l)
        taxTable.addRow({responseLevelName(kLevels[l]),
                         fmtDouble(taxes[l].tax, 3),
                         std::to_string(taxes[l].baselineActions),
                         std::to_string(taxes[l].taxedActions)});
    taxTable.render(std::cout);

    writeJson(out, quanta, seed, rows, taxes, quarantineGate,
              rateLimitTaxMax, partitionTaxMax, pass);

    if (!pass) {
        for (const std::string& v : violations)
            std::fprintf(stderr, "FAIL: %s\n", v.c_str());
        return 1;
    }
    std::printf("all mitigation gates hold\n");
    return 0;
}
