/**
 * @file
 * Ablation: the detection algorithm's own knobs.
 *
 *  (1) The likelihood-ratio decision threshold: the paper picks a
 *      conservative 0.5 because channels measure >= 0.9 and benign
 *      programs < 0.5.  The sweep shows the margin.
 *  (2) The Δt observation interval: the α-tempered choice (100k cycles
 *      for the bus) sits in a wide usable plateau — far smaller or
 *      larger windows wash out the burst signature.
 *
 * Scenarios are simulated once; the analyses re-run over the recorded
 * observations, which is exactly how the software daemon would be
 * re-tuned in the field.
 */

#include "bench/common.hh"
#include "detect/event_density.hh"

using namespace cchunter;
using namespace cchunter::bench;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions opts;
    opts.bandwidthBps = 1000.0;
    opts.quantum = 25000000;
    opts.quanta = cfg.getUint("quanta", 6);
    opts.seed = cfg.getUint("seed", 1);
    opts.trainWindowTicks = opts.quantum * opts.quanta;

    banner("Ablation: detector parameters",
           "Likelihood-threshold margin and delta-t sensitivity on the "
           "memory-bus channel\n(one simulation, many analyses).");

    const BusScenarioResult covert = runBusScenario(opts);
    ScenarioOptions benign_opts = opts;
    const BenignScenarioResult benign =
        runBenignPair("mailserver", "mailserver", benign_opts);

    // (1) Likelihood threshold sweep.
    TableWriter t1({"threshold", "covert channel", "mailserver pair",
                    "margin"});
    for (double threshold : {0.3, 0.5, 0.7, 0.9}) {
        CCHunterParams params;
        params.clustering.burst.likelihoodThreshold = threshold;
        CCHunter hunter(params);
        const auto covert_v =
            hunter.analyzeContention(covert.quantaHistograms);
        const auto benign_v =
            hunter.analyzeContention(benign.busQuanta);
        const bool ok = covert_v.detected && !benign_v.detected;
        t1.addRow({fmtDouble(threshold, 1),
                   covert_v.detected ? "DETECTED" : "missed",
                   benign_v.detected ? "FALSE ALARM" : "clean",
                   ok ? "ok" : "broken"});
    }
    std::printf("(1) decision threshold sweep:\n");
    t1.render(std::cout);

    // (2) Delta-t sweep over the recorded lock train.
    std::printf("\n(2) delta-t sweep (paper: 100k cycles from the "
                "alpha-tempered rule):\n");
    EventTrain train = covert.eventTrain;
    train.setWindow(0, opts.trainWindowTicks);
    TableWriter t2({"delta-t (cycles)", "burst peak bin",
                    "likelihood ratio", "significant"});
    BurstDetector detector;
    for (Tick dt : {1000u, 10000u, 100000u, 1000000u, 10000000u}) {
        const Histogram h = buildEventDensityHistogram(train, dt, 128);
        const BurstAnalysis a = detector.analyze(h);
        t2.addRow({fmtInt(static_cast<long long>(dt)),
                   fmtInt(static_cast<long long>(a.burstPeakBin)),
                   fmtDouble(a.likelihoodRatio, 3),
                   a.significant ? "yes" : "no"});
    }
    t2.render(std::cout);
    std::printf("\ntoo-small delta-t degenerates toward 0/1 densities "
                "(Poisson regime); too-large\nwindows blur bursts into "
                "the mean (normal regime) — the alpha rule avoids "
                "both.\n");
    return 0;
}
