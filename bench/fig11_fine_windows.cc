/**
 * @file
 * Figure 11: autocorrelograms for a 0.1 bps cache covert channel at
 * reduced observation-window sizes (1x, 0.75x, 0.5x, 0.25x of the OS
 * time quantum).  At very low bandwidth the signalling episodes are
 * brief and dormant cover-program noise dilutes whole-series analysis;
 * finer-grained windows recover strong repetitive peaks.
 */

#include "bench/common.hh"
#include "detect/autocorrelation.hh"
#include "detect/oscillation_detector.hh"

using namespace cchunter;
using namespace cchunter::bench;

namespace
{

/** Best oscillation analysis over time-sliced windows of the records. */
OscillationAnalysis
bestWindow(const std::vector<ConflictRecord>& records, Tick window,
           Tick total, const OscillationParams& params)
{
    OscillationDetector detector(params);
    OscillationAnalysis best;
    for (Tick begin = 0; begin + window <= total; begin += window) {
        std::vector<double> labels;
        for (const auto& r : records) {
            if (r.time >= begin && r.time < begin + window) {
                labels.push_back(
                    r.replacerPid != invalidProcess &&
                            r.victimPid != invalidProcess &&
                            r.replacerPid < r.victimPid
                        ? 1.0
                        : 0.0);
            }
        }
        const OscillationAnalysis a = detector.analyze(labels);
        const bool better =
            (a.oscillating && !best.oscillating) ||
            (a.oscillating == best.oscillating &&
             a.dominantValue > best.dominantValue);
        if (better)
            best = a;
    }
    return best;
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions opts;
    opts.bandwidthBps = cfg.getDouble("bandwidth", 0.1);
    opts.quantum = cfg.getUint("quantum", 250000000);
    opts.quanta = cfg.getUint("quanta", 101);
    opts.noiseIntensity = cfg.getDouble("noise_intensity", 0.25);
    opts.seed = cfg.getUint("seed", 1);
    opts.channelSets = cfg.getUint("sets", 512);
    // A 0.1 bps channel only signals hard enough to transmit reliably
    // (a few prime/probe rounds per bit); dormant cover-program noise
    // then rivals the episode within a full quantum, diluting
    // whole-quantum analysis, while finer windows isolate the
    // oscillation.
    opts.cacheRoundsPerBit = cfg.getUint("rounds", 4);
    opts.cacheDormantNoiseGap = cfg.getUint("dormant_gap", 100000);
    opts.message = Message::fromBits(std::vector<bool>(64, true));

    banner("Figure 11",
           "0.1 bps cache channel: autocorrelograms at reduced "
           "observation windows\n(1x / 0.75x / 0.5x / 0.25x of the OS "
           "time quantum).");

    const CacheScenarioResult r = runCacheScenario(opts);
    const Tick total = opts.quantum * opts.quanta;

    TableWriter t({"window", "dominant lag", "peak autocorr",
                   "oscillating"});
    const double fractions[] = {1.0, 0.75, 0.5, 0.25};
    for (double f : fractions) {
        const Tick window =
            static_cast<Tick>(f * static_cast<double>(opts.quantum));
        const OscillationAnalysis a =
            bestWindow(r.records, window, total, OscillationParams{});
        printCorrelogram(a.correlogram,
                         fmtDouble(f, 2) +
                             "x OS time quantum observation window");
        t.addRow({fmtDouble(f, 2) + "x quantum",
                  fmtInt(static_cast<long long>(a.dominantLag)),
                  fmtDouble(a.dominantValue, 3),
                  a.oscillating ? "yes" : "no"});
    }
    t.render(std::cout);
    std::printf("\ntotal conflict events: %zu over %.1f s; paper: "
                "finer windows show significant\nrepetitive peaks for "
                "the 0.1 bps channel.\n",
                r.records.size(), ticksToSeconds(total));
    return 0;
}
