/**
 * @file
 * Figure 12: encoded message patterns.  Random 64-bit messages (the
 * paper generates 256 combinations) are transmitted over all three
 * channels; histogram-bin means with min/max ranges are reported for
 * the contention channels and autocorrelation deviations for the cache
 * channel.  Despite variations in peak magnitudes, the likelihood
 * ratios stay above 0.9 and the autocorrelation deviations remain
 * insignificant.
 *
 * Default: 16 messages (pass messages=256 for the paper's full count).
 */

#include "bench/common.hh"

using namespace cchunter;
using namespace cchunter::bench;

namespace
{

struct BinStats
{
    std::vector<RunningStats> bins{128};
    void
    add(const Histogram& h)
    {
        for (std::size_t i = 0; i < h.numBins(); ++i)
            bins[i].add(static_cast<double>(h.bin(i)));
    }
};

void
printBinStats(const BinStats& stats, const char* title,
              std::size_t max_bin)
{
    std::printf("%s\n", title);
    TableWriter t({"bin", "mean", "min", "max"});
    for (std::size_t i = 0; i <= max_bin; ++i) {
        const auto& s = stats.bins[i];
        if (s.max() <= 0.0)
            continue;
        t.addRow({fmtInt(static_cast<long long>(i)),
                  fmtDouble(s.mean(), 1), fmtDouble(s.min(), 0),
                  fmtDouble(s.max(), 0)});
    }
    t.render(std::cout);
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t messages = cfg.getUint("messages", 16);
    ScenarioOptions base;
    base.bandwidthBps = 1000.0;
    base.quantum = 25000000;
    base.quanta = cfg.getUint("quanta", 2);
    base.seed = cfg.getUint("seed", 1);

    banner("Figure 12",
           "Random 64-bit message patterns across all three channels "
           "(" + std::to_string(messages) + " messages).");

    BinStats bus_bins, div_bins;
    RunningStats bus_lr, div_lr, cache_lag, cache_peak;
    Rng msg_rng(base.seed * 7919);

    for (std::size_t m = 0; m < messages; ++m) {
        ScenarioOptions o = base;
        o.seed = base.seed + m;
        o.message = Message::random64(msg_rng);

        const BusScenarioResult bus = runBusScenario(o);
        Histogram bus_h(128);
        for (const auto& h : bus.quantaHistograms)
            bus_h.merge(h);
        bus_bins.add(bus_h);
        bus_lr.add(bus.verdict.combined.likelihoodRatio);

        const DividerScenarioResult div = runDividerScenario(o);
        Histogram div_h(128);
        for (const auto& h : div.quantaHistograms)
            div_h.merge(h);
        div_bins.add(div_h);
        div_lr.add(div.verdict.combined.likelihoodRatio);

        const CacheScenarioResult cache = runCacheScenario(o);
        cache_lag.add(static_cast<double>(
            cache.verdict.analysis.dominantLag));
        cache_peak.add(cache.verdict.analysis.dominantValue);
    }

    printBinStats(bus_bins,
                  "\nmemory bus lock density: bin mean (min, max) "
                  "across messages",
                  30);
    printBinStats(div_bins,
                  "\ninteger divider contention density: bin mean "
                  "(min, max) across messages",
                  110);

    TableWriter t({"metric", "mean", "min", "max", "paper"});
    t.addRow({"bus likelihood ratio", fmtDouble(bus_lr.mean(), 3),
              fmtDouble(bus_lr.min(), 3), fmtDouble(bus_lr.max(), 3),
              "> 0.9"});
    t.addRow({"divider likelihood ratio", fmtDouble(div_lr.mean(), 3),
              fmtDouble(div_lr.min(), 3), fmtDouble(div_lr.max(), 3),
              "> 0.9"});
    t.addRow({"cache dominant lag", fmtDouble(cache_lag.mean(), 1),
              fmtDouble(cache_lag.min(), 0),
              fmtDouble(cache_lag.max(), 0), "~512 sets"});
    t.addRow({"cache peak autocorr", fmtDouble(cache_peak.mean(), 3),
              fmtDouble(cache_peak.min(), 3),
              fmtDouble(cache_peak.max(), 3),
              "insignificant deviations"});
    std::printf("\n");
    t.render(std::cout);
    return 0;
}
