/**
 * @file
 * Analysis-kernel timing (paper section V-B): the pattern-clustering
 * algorithm runs every 51.2 s and takes at most 0.25 s per computation
 * (0.02 s with feature-dimension reduction); the autocorrelation
 * analysis runs every OS time quantum (0.1 s) and takes at most
 * 0.001 s.  These google-benchmark measurements confirm the software
 * analyses are cheap enough to run as background daemons.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "detect/autocorrelation.hh"
#include "detect/burst_detector.hh"
#include "detect/detector.hh"
#include "detect/event_density.hh"
#include "detect/incremental_autocorr.hh"
#include "detect/kmeans.hh"
#include "detect/pattern_clustering.hh"
#include "util/fft.hh"
#include "util/ring_buffer.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "util/thread_pool.hh"

namespace cchunter
{
namespace
{

std::vector<double>
makeLabelSeries(std::size_t n)
{
    std::vector<double> s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        s.push_back((i / 256) % 2 ? 1.0 : 0.0);
    return s;
}

std::vector<Histogram>
makeQuanta(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Histogram> quanta;
    quanta.reserve(n);
    for (std::size_t q = 0; q < n; ++q) {
        Histogram h(128);
        h.addSample(0, 2000 + rng.nextBelow(500));
        if (q % 2) {
            h.addSample(19 + rng.nextBelow(3), 100 + rng.nextBelow(50));
            h.addSample(20, 200 + rng.nextBelow(50));
        } else {
            h.addSample(1, rng.nextBelow(20));
            h.addSample(2, rng.nextBelow(8));
        }
        quanta.push_back(std::move(h));
    }
    return quanta;
}

/**
 * Autocorrelation over one quantum's conflict events at the paper's
 * scale (lags up to 1000).  Paper budget: 1 ms per quantum.
 */
void
BM_AutocorrelogramQuantum(benchmark::State& state)
{
    const auto series =
        makeLabelSeries(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto gram = autocorrelogram(series, 1000);
        benchmark::DoNotOptimize(gram);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AutocorrelogramQuantum)
    ->Arg(2048)
    ->Arg(8192)
    ->Arg(32768)
    ->Arg(1 << 16)
    ->Arg(1 << 20);

std::vector<double>
makeNoisyLabelSeries(std::size_t n)
{
    Rng rng(17);
    std::vector<double> s;
    s.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        double v = (i / 256) % 2 ? 1.0 : 0.0;
        if (rng.nextBool(0.05))
            v = 1.0 - v;
        s.push_back(v);
    }
    return s;
}

/**
 * Full correlogram at max_lag = N/2: the direct evaluation is
 * O(N^2/2) here, which is the regime the FFT path exists for.  One
 * iteration keeps the N = 2^18 case (~30 s of O(N^2) work) bounded;
 * compare against BM_AutocorrelogramFftFull at the same N for the
 * speedup (>= 10x required at 2^18).
 */
void
BM_AutocorrelogramNaiveFull(benchmark::State& state)
{
    const auto series =
        makeNoisyLabelSeries(static_cast<std::size_t>(state.range(0)));
    const std::size_t max_lag = series.size() / 2;
    for (auto _ : state) {
        auto gram = autocorrelogramNaive(series, max_lag);
        benchmark::DoNotOptimize(gram);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AutocorrelogramNaiveFull)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/** FFT path at the same shapes, plus 2^20 (naive is intractable). */
void
BM_AutocorrelogramFftFull(benchmark::State& state)
{
    const auto series =
        makeNoisyLabelSeries(static_cast<std::size_t>(state.range(0)));
    const std::size_t max_lag = series.size() / 2;
    for (auto _ : state) {
        auto gram = autocorrelogramFft(series, max_lag);
        benchmark::DoNotOptimize(gram);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_AutocorrelogramFftFull)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Arg(1 << 18)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

/**
 * Full pattern-clustering pass over a 512-quantum window.  Paper
 * budget: 0.25 s worst case without feature-dimension reduction,
 * 0.02 s with it.
 */
void
BM_PatternClusteringWindow(benchmark::State& state)
{
    const auto quanta =
        makeQuanta(static_cast<std::size_t>(state.range(0)), 7);
    PatternClusteringParams params;
    params.maxFeatureDims =
        static_cast<std::size_t>(state.range(1));
    PatternClusteringAnalyzer analyzer(params);
    for (auto _ : state) {
        auto result = analyzer.analyze(quanta);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_PatternClusteringWindow)
    ->Args({64, 0})
    ->Args({512, 0})   // all 128 dims (paper: <= 0.25 s)
    ->Args({512, 16}); // reduced (paper: <= 0.02 s)

/** Burst analysis of one density histogram. */
void
BM_BurstAnalysis(benchmark::State& state)
{
    auto quanta = makeQuanta(1, 11);
    BurstDetector detector;
    for (auto _ : state) {
        auto a = detector.analyze(quanta[0]);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_BurstAnalysis);

/** Density-histogram construction from a raw event train. */
void
BM_EventDensityHistogram(benchmark::State& state)
{
    Rng rng(3);
    EventTrain train(0, 250000000);
    Tick now = 0;
    for (int i = 0; i < 50000; ++i) {
        now += rng.nextBelow(5000) + 1;
        train.addEvent(now);
    }
    for (auto _ : state) {
        auto h = buildEventDensityHistogram(train, 100000);
        benchmark::DoNotOptimize(h);
    }
}
BENCHMARK(BM_EventDensityHistogram);

/** k-means over 512 discretized histograms (the clustering core). */
void
BM_KMeans512(benchmark::State& state)
{
    Rng rng(5);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 512; ++i) {
        std::vector<double> p(128, 0.0);
        p[0] = 10.0;
        p[20] = (i % 2) ? 8.0 + rng.nextDouble() : 0.0;
        p[1] = rng.nextDouble();
        points.push_back(std::move(p));
    }
    KMeansParams params;
    params.k = 4;
    for (auto _ : state) {
        auto r = kmeans(points, params);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_KMeans512);

/** k-means with 8 restarts, fanned across a pool of range(0) threads. */
void
BM_KMeansRestartsThreaded(benchmark::State& state)
{
    Rng rng(5);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 512; ++i) {
        std::vector<double> p(128, 0.0);
        p[0] = 10.0;
        p[20] = (i % 2) ? 8.0 + rng.nextDouble() : 0.0;
        p[1] = rng.nextDouble();
        points.push_back(std::move(p));
    }
    KMeansParams params;
    params.k = 4;
    params.restarts = 8;
    // Arg(1) measures the true serial path (no pool at all); the
    // caller participates in parallelFor, so a 1-worker pool would
    // really be two threads.
    const auto threads = static_cast<std::size_t>(state.range(0));
    ThreadPool pool(threads);
    ThreadPool* used = threads > 1 ? &pool : nullptr;
    for (auto _ : state) {
        auto r = kmeans(points, params, used);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_KMeansRestartsThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/**
 * Daemon fan-out: the per-quantum analysis pass over 16 monitored
 * units (each an oscillation analysis of an 8192-event labelled train
 * plus a burst scan), spread across a pool of range(0) threads.  This
 * is the per-slot work AuditDaemon::runOnlineAnalyses performs; wall
 * time should drop as the pool grows (>= 2x from 1 to 4 threads on a
 * 4-core host).
 */
void
BM_DaemonFanOut(benchmark::State& state)
{
    constexpr std::size_t kUnits = 16;
    std::vector<std::vector<double>> series;
    std::vector<Histogram> hists;
    Rng rng(23);
    for (std::size_t u = 0; u < kUnits; ++u) {
        std::vector<double> s;
        const std::size_t period = 64 << (u % 4);
        for (std::size_t i = 0; i < 8192; ++i) {
            double v = (i / (period / 2)) % 2 ? 1.0 : 0.0;
            if (rng.nextBool(0.05))
                v = 1.0 - v;
            s.push_back(v);
        }
        series.push_back(std::move(s));
        Histogram h(128);
        h.addSample(0, 2000 + rng.nextBelow(500));
        h.addSample(19 + rng.nextBelow(3), 100 + rng.nextBelow(50));
        hists.push_back(std::move(h));
    }
    const auto threads = static_cast<std::size_t>(state.range(0));
    ThreadPool pool(threads);
    OscillationDetector osc;
    BurstDetector burst;
    for (auto _ : state) {
        std::vector<OscillationAnalysis> verdicts(kUnits);
        std::vector<BurstAnalysis> bursts(kUnits);
        auto analyzeUnit = [&](std::size_t u) {
            verdicts[u] = osc.analyze(series[u]);
            bursts[u] = burst.analyze(hists[u]);
        };
        if (threads > 1) {
            pool.parallelFor(kUnits, analyzeUnit);
        } else {
            for (std::size_t u = 0; u < kUnits; ++u)
                analyzeUnit(u);
        }
        benchmark::DoNotOptimize(verdicts);
        benchmark::DoNotOptimize(bursts);
    }
}
BENCHMARK(BM_DaemonFanOut)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/**
 * Streaming window maintenance: feed range(0) total quanta through a
 * 512-capacity ring while incrementally maintaining the merged
 * contention histogram (merge on drain, unmerge on evict).  The
 * bounded-memory pipeline's core claim is that per-quantum cost is
 * independent of run length, so items/s must stay flat as the total
 * grows from 1x to 16x the retention window.
 */
void
BM_StreamingWindowMaintain(benchmark::State& state)
{
    const auto total = static_cast<std::size_t>(state.range(0));
    const auto source = makeQuanta(512, 29);
    for (auto _ : state) {
        RingBuffer<Histogram> window(512);
        Histogram merged(128);
        for (std::size_t q = 0; q < total; ++q) {
            Histogram h = source[q % source.size()];
            merged.merge(h);
            if (auto evicted = window.push(std::move(h)))
                merged.unmerge(*evicted);
        }
        benchmark::DoNotOptimize(merged);
        benchmark::DoNotOptimize(window);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(total));
}
BENCHMARK(BM_StreamingWindowMaintain)
    ->Arg(512)
    ->Arg(2048)
    ->Arg(8192);

/**
 * The pre-streaming alternative: retain every quantum forever and
 * re-merge the full history each quantum (what the per-quantum
 * analysis pass amounted to before the incremental merged histogram).
 * items/s degrades linearly with the total; the contrast with the
 * flat BM_StreamingWindowMaintain rate is the point.
 */
void
BM_LegacyUnboundedRemerge(benchmark::State& state)
{
    const auto total = static_cast<std::size_t>(state.range(0));
    const auto source = makeQuanta(512, 29);
    for (auto _ : state) {
        std::vector<Histogram> history;
        for (std::size_t q = 0; q < total; ++q) {
            history.push_back(source[q % source.size()]);
            Histogram merged(128);
            for (const auto& h : history)
                merged.merge(h);
            benchmark::DoNotOptimize(merged);
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(total));
}
BENCHMARK(BM_LegacyUnboundedRemerge)
    ->Arg(512)
    ->Arg(2048)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/**
 * Kernel microbench: butterfly throughput of one whole planned
 * complex FFT (the plan is warm, so only the vectorised stages are
 * measured).  range(1) toggles the SIMD backend — the delta isolates
 * what the butterfly vectorisation buys.
 */
void
BM_PlannedFft(benchmark::State& state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    setSimdEnabled(state.range(1) != 0);
    Rng rng(41);
    std::vector<std::complex<double>> base;
    base.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        base.emplace_back(rng.nextGaussian(0.0, 1.0),
                          rng.nextGaussian(0.0, 1.0));
    const FftPlan plan(n);
    auto work = base;
    for (auto _ : state) {
        work = base;
        fftInPlace(work.data(), n, plan);
        benchmark::DoNotOptimize(work.data());
    }
    setSimdEnabled(true);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PlannedFft)
    ->Args({1 << 12, 1})
    ->Args({1 << 12, 0})
    ->Args({1 << 16, 1})
    ->Args({1 << 16, 0});

/** Kernel microbench: the correlogram normalisation pass (divide by
 *  r_0) over a full lag range, SIMD on/off. */
void
BM_NormalizationPass(benchmark::State& state)
{
    setSimdEnabled(state.range(0) != 0);
    Rng rng(43);
    std::vector<double> base;
    base.reserve(1 << 16);
    for (std::size_t i = 0; i < (std::size_t{1} << 16); ++i)
        base.push_back(rng.nextDouble() + 1.0);
    auto work = base;
    for (auto _ : state) {
        work = base;
        simd::divideInPlace(work.data(), work.size(), 3.7);
        benchmark::DoNotOptimize(work.data());
    }
    setSimdEnabled(true);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(base.size()));
}
BENCHMARK(BM_NormalizationPass)->Arg(1)->Arg(0);

/** Kernel microbench: the k-means distance kernel over the clustering
 *  feature dimensionality (128), SIMD on/off. */
void
BM_DistanceKernel(benchmark::State& state)
{
    setSimdEnabled(state.range(0) != 0);
    Rng rng(47);
    std::vector<double> a(128), b(128);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = rng.nextGaussian(0.0, 1.0);
        b[i] = rng.nextGaussian(0.0, 1.0);
    }
    for (auto _ : state) {
        double d = simd::squaredDistance(a.data(), b.data(), a.size());
        benchmark::DoNotOptimize(d);
    }
    setSimdEnabled(true);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(a.size()));
}
BENCHMARK(BM_DistanceKernel)->Arg(1)->Arg(0);

/**
 * Sliding-window refresh, incremental: stream 4096 labels through a
 * 4096-capacity maintainer that is already full (every push evicts),
 * querying the full correlogram once per 256 pushes — the per-quantum
 * audit cadence.  Compare with BM_SlidingWindowRecompute: same
 * schedule, but each query recomputes from the window contents.
 */
void
BM_SlidingWindowIncremental(benchmark::State& state)
{
    constexpr std::size_t kWindow = 4096;
    constexpr std::size_t kLag = 1000;
    const auto feed = makeNoisyLabelSeries(2 * kWindow);
    IncrementalAutocorrelation inc(kLag, kWindow);
    for (std::size_t i = 0; i < kWindow; ++i)
        inc.push(feed[i]);
    std::vector<double> gram;
    for (auto _ : state) {
        for (std::size_t i = 0; i < kWindow; ++i) {
            inc.push(feed[kWindow + i]);
            if (i % 256 == 255) {
                inc.correlogram(kLag, gram);
                benchmark::DoNotOptimize(gram.data());
            }
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kWindow));
}
BENCHMARK(BM_SlidingWindowIncremental)->Unit(benchmark::kMillisecond);

/** The full-recompute reference for BM_SlidingWindowIncremental. */
void
BM_SlidingWindowRecompute(benchmark::State& state)
{
    constexpr std::size_t kWindow = 4096;
    constexpr std::size_t kLag = 1000;
    const auto feed = makeNoisyLabelSeries(2 * kWindow);
    std::vector<double> window(feed.begin(), feed.begin() + kWindow);
    for (auto _ : state) {
        for (std::size_t i = 0; i < kWindow; ++i) {
            window.erase(window.begin());
            window.push_back(feed[kWindow + i]);
            if (i % 256 == 255) {
                auto gram = autocorrelogram(window, kLag);
                benchmark::DoNotOptimize(gram);
            }
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kWindow));
}
BENCHMARK(BM_SlidingWindowRecompute)->Unit(benchmark::kMillisecond);

std::vector<std::vector<double>>
makeBatchSeries(std::size_t count)
{
    Rng rng(53);
    std::vector<std::vector<double>> series;
    series.reserve(count);
    for (std::size_t s = 0; s < count; ++s) {
        std::vector<double> v;
        v.reserve(4096);
        const std::size_t period = 64 << (s % 4);
        for (std::size_t i = 0; i < 4096; ++i) {
            double x = (i / (period / 2)) % 2 ? 1.0 : 0.0;
            if (rng.nextBool(0.05))
                x = 1.0 - x;
            v.push_back(x);
        }
        series.push_back(std::move(v));
    }
    return series;
}

/**
 * Batched end-of-run transforms: range(0) same-shape series through
 * one shared plan and scratch arena (the fleet's per-shard pass).
 */
void
BM_BatchedCorrelograms(benchmark::State& state)
{
    const auto series =
        makeBatchSeries(static_cast<std::size_t>(state.range(0)));
    std::vector<const std::vector<double>*> pointers;
    for (const auto& s : series)
        pointers.push_back(&s);
    for (auto _ : state) {
        auto grams = autocorrelogramsBatched(pointers, 1000);
        benchmark::DoNotOptimize(grams);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(series.size()));
}
BENCHMARK(BM_BatchedCorrelograms)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

/**
 * The unbatched reference: each series grows its own cold scratch
 * buffers (the thread-local plan cache stays warm either way, so the
 * delta against BM_BatchedCorrelograms isolates what the shared
 * arena buys).
 */
void
BM_IndependentCorrelograms(benchmark::State& state)
{
    const auto series =
        makeBatchSeries(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        std::vector<std::vector<double>> grams;
        grams.reserve(series.size());
        for (const auto& s : series) {
            FftScratch scratch;
            std::vector<double> gram;
            autocorrelogramFft(s, 1000, scratch, gram);
            benchmark::DoNotOptimize(gram.data());
            grams.push_back(std::move(gram));
        }
        benchmark::DoNotOptimize(grams);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(series.size()));
}
BENCHMARK(BM_IndependentCorrelograms)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

/** End-to-end contention verdict over a 512-quantum window. */
void
BM_ContentionVerdict512(benchmark::State& state)
{
    const auto quanta = makeQuanta(512, 13);
    CCHunter hunter;
    for (auto _ : state) {
        auto v = hunter.analyzeContention(quanta);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_ContentionVerdict512);

} // namespace
} // namespace cchunter

/**
 * Like BENCHMARK_MAIN(), but also writes the machine-readable run
 * record to BENCH_analysis.json unless the caller already chose a
 * destination with --benchmark_out=...
 */
int
main(int argc, char** argv)
{
    bool has_out = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0)
            has_out = true;

    std::vector<char*> args(argv, argv + argc);
    std::string out_flag = "--benchmark_out=BENCH_analysis.json";
    std::string fmt_flag = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }

    int effective_argc = static_cast<int>(args.size());
    benchmark::Initialize(&effective_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(effective_argc,
                                               args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
