/**
 * @file
 * Robustness study: phase-synchronized benign contention.
 *
 * CC-Hunter's premise is that *recurrent conflict patterns* mean covert
 * signalling.  Real programs have phases; two divide-heavy programs
 * whose active phases happen to alternate produce contention bursts
 * that recur with the phase period — a structure the detector cannot,
 * in principle, tell apart from a deliberately modulated channel.  This
 * harness maps the boundary:
 *
 *  - unphased and randomly-phased pairs stay below the likelihood
 *    threshold (the contention density decays smoothly);
 *  - tightly phase-locked pairs can cross it — an honest limitation
 *    shared with the paper's framework, which motivates its pairing of
 *    detection with administrator review rather than automatic
 *    punishment.
 */

#include <algorithm>
#include <memory>

#include "auditor/cc_auditor.hh"
#include "auditor/daemon.hh"
#include "bench/common.hh"
#include "workloads/synthetic.hh"

using namespace cchunter;
using namespace cchunter::bench;

namespace
{

SyntheticParams
divHeavy(std::uint64_t seed, Tick on, Tick off, bool saturating)
{
    SyntheticParams p;
    p.name = saturating ? "saturating-div" : "phased-div";
    p.seed = seed;
    if (saturating) {
        // Back-to-back long division batches: the unit never idles
        // during the active phase (the trojan's behaviour, but with an
        // innocent purpose).
        p.memFraction = 0.0;
        p.divideFraction = 0.98;
        p.divideOpsMin = 1000;
        p.divideOpsMax = 2000;
    } else {
        p.memFraction = 0.2;
        p.divideFraction = 0.5;
        p.divideOpsMin = 8;
        p.divideOpsMax = 40;
    }
    p.computeMin = 100;
    p.computeMax = 400;
    p.phaseOnTicks = on;
    p.phaseOffTicks = off;
    return p;
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const Tick quantum = cfg.getUint("quantum", 25000000);
    const std::size_t quanta = cfg.getUint("quanta", 4);

    banner("Robustness: phase-synchronized benign contention",
           "Two divide-heavy programs with alternating activity "
           "phases, from unphased to\ntightly phase-locked.");

    struct Row
    {
        const char* name;
        Tick on, off;
        bool saturating;
    };
    const Row rows[] = {
        {"unphased, realistic mix", 0, 0, false},
        {"loose phases (11 ms / 7 ms)", 27500000, 17500000, false},
        {"phase-locked (1 ms / 1 ms)", 2500000, 2500000, false},
        {"phase-locked (100 us / 100 us)", 250000, 250000, false},
        {"SATURATING phase-locked (1 ms / 1 ms)", 2500000, 2500000,
         true},
    };

    TableWriter t({"pair phasing", "conflict events", "likelihood",
                   "verdict", "note"});
    for (const auto& row : rows) {
        MachineParams mp;
        mp.scheduler.quantum = quantum;
        Machine machine(mp);
        machine.addProcess(
            std::make_unique<SyntheticWorkload>(
                divHeavy(1, row.on, row.off, row.saturating)),
            0);
        machine.addProcess(
            std::make_unique<SyntheticWorkload>(
                divHeavy(2, row.on, row.off, row.saturating)),
            1);

        CCAuditor auditor(machine);
        const AuditKey key = requestAuditKey(true);
        auditor.monitorDivider(key, 0, 0);
        AuditDaemon daemon(machine, auditor);
        machine.runQuanta(quanta);

        const auto verdict = daemon.analyzeContention(0);
        const double lr =
            std::max(verdict.combined.likelihoodRatio,
                     verdict.recurrence.maxLikelihoodRatio);
        t.addRow({row.name,
                  fmtInt(static_cast<long long>(
                      machine.divider(0).totalConflicts())),
                  fmtDouble(lr, 3),
                  verdict.detected ? "flagged" : "clean",
                  verdict.detected
                      ? "phase-locked contention mimics signalling"
                      : "-"});
    }
    t.render(std::cout);
    std::printf("\nrealistic mixes stay clean at every phasing: "
                "benign contention densities spread\nsmoothly instead "
                "of clustering, so the valley/likelihood tests reject "
                "them.  Only a\npair that *saturates* the unit in "
                "lock-step — statistically identical to a trojan\n"
                "signalling all-ones — reaches the gray zone, which "
                "the paper resolves by keeping an\nadministrator in "
                "the loop after detection.\n");
    return 0;
}
