/**
 * @file
 * Figure 14: false-alarm study.  Benchmark-proxy pairs (SPEC2006,
 * Stream, Filebench) run as hyperthreads on one physical core, chosen
 * to maximise conflicts on each audited unit (gobmk/sjeng hammer the
 * bus; bzip2/h264ref divide heavily; the servers churn caches and
 * locks).  Despite bursts and conflict misses, none of the pairs may
 * trigger CC-Hunter: likelihood ratios stay below 0.5 (mailserver's
 * sync bursts form the weak second distribution the paper describes)
 * and no autocorrelogram shows sustained periodicity.
 */

#include "bench/common.hh"
#include "workloads/suites.hh"

using namespace cchunter;
using namespace cchunter::bench;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions opts;
    opts.quantum = cfg.getUint("quantum", 125000000);
    opts.quanta = cfg.getUint("quanta", 4);
    opts.seed = cfg.getUint("seed", 1);
    const std::size_t max_pairs = cfg.getUint("pairs", 5);

    banner("Figure 14",
           "Event density histograms and autocorrelograms for benign "
           "benchmark pairs\n(hyperthreads on one core; no covert "
           "channels -> no alarms expected).");

    TableWriter t({"pair", "bus LR", "div LR", "cache peak",
                   "bus", "divider", "cache"});
    unsigned alarms = 0;
    std::size_t count = 0;
    for (const auto& [a, b] : falseAlarmPairs()) {
        if (count++ >= max_pairs)
            break;
        const BenignScenarioResult r = runBenignPair(a, b, opts);

        Histogram bus_h(128), div_h(128);
        for (const auto& h : r.busQuanta)
            bus_h.merge(h);
        for (const auto& h : r.dividerQuanta)
            div_h.merge(h);
        const std::string pair = a + "+" + b;
        printDensityHistogram(bus_h, pair + ": memory bus lock density",
                              "locks per dt", 30);
        printDensityHistogram(div_h,
                              pair + ": divider contention density",
                              "wait conflicts per dt", 60);
        printCorrelogram(r.cacheVerdict.analysis.correlogram,
                         pair + ": conflict-miss autocorrelogram");

        alarms += r.busVerdict.detected + r.dividerVerdict.detected +
                  r.cacheVerdict.detected;
        t.addRow({pair,
                  fmtDouble(r.busVerdict.combined.likelihoodRatio, 3),
                  fmtDouble(r.dividerVerdict.combined.likelihoodRatio,
                            3),
                  fmtDouble(r.cacheVerdict.analysis.dominantValue, 3),
                  r.busVerdict.detected ? "ALARM" : "clean",
                  r.dividerVerdict.detected ? "ALARM" : "clean",
                  r.cacheVerdict.detected ? "ALARM" : "clean"});
    }

    std::printf("\n");
    t.render(std::cout);
    std::printf("\nfalse alarms: %u (paper: zero; mailserver shows a "
                "weak second distribution with\nlikelihood ratio < "
                "0.5, below the decision threshold)\n",
                alarms);
    return alarms == 0 ? 0 : 1;
}
