/**
 * @file
 * Fleet-scaling benchmark: tenants/second versus shard count.
 *
 * Runs the same synthetic fleet at increasing shard counts, timing
 * each full FleetAuditor pass, and emits the series as
 * BENCH_fleet.json.  Two gates guard the run:
 *
 *  - Equivalence (always): every shard count must produce the same
 *    incident-stream hash — the subsystem's determinism contract.
 *  - Scaling (hardware-permitting): with >= 4 cores available, the
 *    1 -> 4 shard speedup on the default 16-tenant fleet must reach
 *    2.5x.  On smaller machines the expectation scales down to
 *    min(shards, cores) and the JSON records the cores seen, so CI
 *    on a big runner enforces the real target while a laptop (or a
 *    one-core container) still checks equivalence honestly instead
 *    of faking throughput.
 *
 * Arguments (key=value): tenants=16, quanta=8, quantum=2500000,
 * seed=1, max_shards=8, workers=0 (0 = hardware), out=BENCH_fleet.json.
 * Kernel knobs: analysis.simd=1 (vectorised analysis kernels),
 * analysis.incrementalAutocorr=1 (per-quantum sliding-window
 * maintainer), fleet.batchedFft=1 (batched end-of-run transforms) —
 * flip any of them off to measure its contribution; the incident
 * stream must stay identical either way.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "fleet/fleet_auditor.hh"
#include "util/simd.hh"
#include "util/thread_pool.hh"

using namespace cchunter;
using namespace cchunter::bench;

namespace
{

struct ScalePoint
{
    std::size_t shards = 0;
    double wallMs = 0.0;
    double tenantsPerSec = 0.0;
    double speedup = 1.0;
    std::uint64_t incidentHash = 0;
    std::uint64_t alarms = 0;
    std::size_t incidents = 0;
};

void
writeJson(const std::string& path, const SyntheticFleetOptions& fleet,
          std::size_t hardware, bool equivalent,
          const std::vector<ScalePoint>& points)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"fleet_scaling\",\n");
    std::fprintf(f, "  \"tenants\": %zu,\n", fleet.tenants);
    std::fprintf(f, "  \"quanta\": %zu,\n", fleet.quanta);
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(fleet.seed));
    std::fprintf(f, "  \"hardware_concurrency\": %zu,\n", hardware);
    std::fprintf(f, "  \"equivalent\": %s,\n",
                 equivalent ? "true" : "false");
    std::fprintf(f, "  \"incident_hash\": \"0x%016llx\",\n",
                 points.empty()
                     ? 0ull
                     : static_cast<unsigned long long>(
                           points.front().incidentHash));
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ScalePoint& p = points[i];
        std::fprintf(f,
                     "    {\"shards\": %zu, \"wall_ms\": %.2f, "
                     "\"tenants_per_sec\": %.3f, \"speedup\": %.3f, "
                     "\"alarms\": %llu, \"incidents\": %zu}%s\n",
                     p.shards, p.wallMs, p.tenantsPerSec, p.speedup,
                     static_cast<unsigned long long>(p.alarms),
                     p.incidents, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    SyntheticFleetOptions fleet;
    fleet.tenants = cfg.getUint("tenants", 16);
    fleet.quanta = cfg.getUint("quanta", 8);
    fleet.quantum = cfg.getUint("quantum", 2500000);
    fleet.seed = cfg.getUint("seed", 1);
    const std::size_t maxShards = cfg.getUint("max_shards", 8);
    const auto workers =
        static_cast<std::size_t>(cfg.getUint("workers", 0));
    const std::string out = cfg.getString("out", "BENCH_fleet.json");
    setSimdEnabled(cfg.getBool("analysis.simd", true));
    const bool incremental =
        cfg.getBool("analysis.incrementalAutocorr", true);
    const bool batchedFft = cfg.getBool("fleet.batchedFft", true);

    const std::size_t hardware = ThreadPool::hardwareConcurrency();

    banner("Fleet scaling: tenants/second vs shard count",
           "The same fleet at every shard count must yield the same "
           "incident stream; added shards may only buy wall-clock "
           "time (up to the cores actually available).");
    std::printf("tenants=%zu quanta=%zu seed=%llu cores=%zu\n\n",
                fleet.tenants, fleet.quanta,
                static_cast<unsigned long long>(fleet.seed), hardware);

    const TenantRegistry synthetic = TenantRegistry::synthetic(fleet);
    TenantRegistry registry;
    for (TenantConfig tenant : synthetic.tenants()) {
        tenant.audit.online.incrementalAutocorr = incremental;
        registry.add(std::move(tenant));
    }

    std::vector<ScalePoint> points;
    TableWriter t({"shards", "wall ms", "tenants/s", "speedup",
                   "alarms", "incidents", "hash"});
    for (std::size_t shards = 1; shards <= maxShards; shards *= 2) {
        FleetAuditParams params;
        params.shards = shards;
        params.workerThreads = workers;
        params.batchedFft = batchedFft;
        FleetAuditor auditor(registry, params);

        const auto start = std::chrono::steady_clock::now();
        FleetAuditReport report = auditor.run();
        const auto end = std::chrono::steady_clock::now();

        ScalePoint p;
        p.shards = shards;
        p.wallMs = std::chrono::duration<double, std::milli>(
                       end - start)
                       .count();
        p.tenantsPerSec = p.wallMs > 0.0
                              ? 1000.0 * static_cast<double>(
                                             fleet.tenants) /
                                    p.wallMs
                              : 0.0;
        p.speedup = points.empty() || p.wallMs <= 0.0
                        ? 1.0
                        : points.front().wallMs / p.wallMs;
        p.incidentHash = report.incidents.streamHash();
        p.alarms = report.alarmsTotal;
        p.incidents = report.incidents.incidents().size();
        points.push_back(p);

        char hash[24];
        std::snprintf(hash, sizeof(hash), "0x%016llx",
                      static_cast<unsigned long long>(p.incidentHash));
        t.addRow({std::to_string(p.shards), fmtDouble(p.wallMs, 1),
                  fmtDouble(p.tenantsPerSec, 2),
                  fmtDouble(p.speedup, 2), std::to_string(p.alarms),
                  std::to_string(p.incidents), hash});
    }
    t.render(std::cout);

    bool equivalent = true;
    for (const ScalePoint& p : points)
        equivalent &= p.incidentHash == points.front().incidentHash;

    writeJson(out, fleet, hardware, equivalent, points);

    if (!equivalent) {
        std::fprintf(stderr, "FAIL: incident stream depends on the "
                             "shard count\n");
        return 1;
    }

    // Scaling gate, scaled to the hardware actually present: at the
    // 4-shard point the ideal speedup is min(4, cores); demand 2.5x
    // when 4+ cores exist and a proportional fraction (62.5%) of the
    // ideal otherwise.  A single-core machine is exempt (ideal = 1).
    for (const ScalePoint& p : points) {
        if (p.shards != 4)
            continue;
        const double ideal = static_cast<double>(
            std::min<std::size_t>(p.shards, hardware));
        const double required = ideal * (2.5 / 4.0);
        if (ideal > 1.0 && p.speedup < required) {
            std::fprintf(stderr,
                         "FAIL: 1->4 shard speedup %.2fx below the "
                         "%.2fx floor for %zu core(s)\n",
                         p.speedup, required, hardware);
            return 1;
        }
    }
    return 0;
}
