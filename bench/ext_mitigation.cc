/**
 * @file
 * Extension: close the loop from detection to damage control.
 *
 * The paper positions CC-Hunter as "a desirable first step before
 * adopting damage control strategies like limiting resource sharing or
 * bandwidth reduction".  This harness runs that second step:
 *
 *  (a) divider channel — detected, then the suspected spy is migrated
 *      to another core (unshare): conflicts stop and the spy decodes
 *      noise;
 *  (b) bus channel — detected, then bus locks are rate-limited to one
 *      per Δt: the burst signature collapses and so does the channel's
 *      usable bandwidth.
 */

#include <memory>

#include "bench/common.hh"
#include "channels/bus_channel.hh"
#include "channels/divider_channel.hh"
#include "mitigate/mitigator.hh"

using namespace cchunter;
using namespace cchunter::bench;

namespace
{

double
berOverSlots(const Message& sent,
             const std::vector<std::pair<std::size_t, bool>>& slots,
             std::size_t from_slot)
{
    std::size_t n = 0, errors = 0;
    for (const auto& [slot, value] : slots) {
        if (slot < from_slot)
            continue;
        ++n;
        errors += value != sent.bitCyclic(slot);
    }
    return n == 0 ? 1.0 : static_cast<double>(errors) /
                              static_cast<double>(n);
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const Tick quantum = cfg.getUint("quantum", 25000000);
    const std::size_t quanta_before = cfg.getUint("quanta", 4);
    const std::size_t quanta_after = quanta_before;

    banner("Extension: detection-triggered mitigation",
           "Detect the channel, respond (unshare / rate-limit), and "
           "measure the channel's\nhealth before and after.");

    TableWriter t({"scenario", "phase", "events/quantum",
                   "spy BER", "verdict"});

    // (a) Divider channel, unshare response.
    {
        MachineParams mp;
        mp.scheduler.quantum = quantum;
        Machine machine(mp);
        ChannelTiming timing;
        timing.start = 1000;
        timing.bandwidthBps = 1000.0;
        Rng rng(1);
        const Message msg = Message::random64(rng);
        DividerTrojanParams tp;
        tp.timing = timing;
        tp.message = msg;
        machine.addProcess(std::make_unique<DividerTrojan>(tp), 0);
        DividerSpyParams sp;
        sp.timing = timing;
        auto spy_owned = std::make_unique<DividerSpy>(sp);
        DividerSpy* spy = spy_owned.get();
        Process& spy_proc = machine.addProcess(std::move(spy_owned), 1);

        CCAuditor auditor(machine);
        const AuditKey key = requestAuditKey(true);
        auditor.monitorDivider(key, 0, 0);
        AuditDaemon daemon(machine, auditor);

        machine.runQuanta(quanta_before);
        const auto verdict_before = daemon.analyzeContention(0);
        const auto conflicts_before =
            machine.divider(0).totalConflicts();
        const double ber_before =
            berOverSlots(msg, spy->decodedSlots(), 0);
        t.addRow({"divider + unshare", "before mitigation",
                  fmtInt(static_cast<long long>(
                      conflicts_before / quanta_before)),
                  fmtDouble(ber_before, 3),
                  verdict_before.detected ? "DETECTED" : "clean"});

        Mitigator mitigator(machine, daemon);
        const auto report = mitigator.unshare(spy_proc.pid());
        std::printf("response: %s\n", report.summary().c_str());

        const std::size_t slot_cut =
            timing.bitIndexAt(machine.now()) + 2;
        machine.runQuanta(1); // the re-pinning takes effect here
        const auto conflicts_at_switch =
            machine.divider(0).totalConflicts();
        machine.runQuanta(quanta_after);
        const auto conflicts_after =
            machine.divider(0).totalConflicts() - conflicts_at_switch;
        const double ber_after =
            berOverSlots(msg, spy->decodedSlots(), slot_cut);
        t.addRow({"divider + unshare", "after mitigation",
                  fmtInt(static_cast<long long>(
                      conflicts_after / quanta_after)),
                  fmtDouble(ber_after, 3), "channel severed"});
    }

    // (b) Bus channel, rate-limit response.
    {
        MachineParams mp;
        mp.scheduler.quantum = quantum;
        Machine machine(mp);
        ChannelTiming timing;
        timing.start = 1000;
        timing.bandwidthBps = 1000.0;
        Rng rng(2);
        const Message msg = Message::random64(rng);
        BusTrojanParams tp;
        tp.timing = timing;
        tp.message = msg;
        machine.addProcess(std::make_unique<BusTrojan>(tp), 0);
        BusSpyParams sp;
        sp.timing = timing;
        auto spy_owned = std::make_unique<BusSpy>(sp);
        BusSpy* spy = spy_owned.get();
        machine.addProcess(std::move(spy_owned), 2);

        CCAuditor auditor(machine);
        const AuditKey key = requestAuditKey(true);
        auditor.monitorBus(key, 0);
        AuditDaemon daemon(machine, auditor);

        machine.runQuanta(quanta_before);
        const auto verdict_before = daemon.analyzeContention(0);
        const auto locks_before = machine.mem().bus().locks();
        const double ber_before =
            berOverSlots(msg, spy->decodedSlots(), 0);
        t.addRow({"bus + rate-limit", "before mitigation",
                  fmtInt(static_cast<long long>(
                      locks_before / quanta_before)),
                  fmtDouble(ber_before, 3),
                  verdict_before.detected ? "DETECTED" : "clean"});

        Mitigator mitigator(machine, daemon);
        const auto report =
            mitigator.respond(MonitorTarget::MemoryBus, 0);
        std::printf("response: %s\n", report.summary().c_str());

        const std::size_t slot_cut =
            timing.bitIndexAt(machine.now()) + 2;
        machine.runQuanta(quanta_after);
        const auto locks_after =
            machine.mem().bus().locks() - locks_before;
        const double ber_after =
            berOverSlots(msg, spy->decodedSlots(), slot_cut);
        t.addRow({"bus + rate-limit", "after mitigation",
                  fmtInt(static_cast<long long>(
                      locks_after / quanta_after)),
                  fmtDouble(ber_after, 3),
                  "bandwidth collapsed"});
        std::printf("throttled locks: %llu\n",
                    static_cast<unsigned long long>(
                        machine.mem().bus().throttledLocks()));
    }

    std::printf("\n");
    t.render(std::cout);
    std::printf("\nunshare severs execution-unit/cache channels "
                "outright; lock rate-limiting leaves at\nmost one "
                "conflict per observation window, destroying the "
                "burst code the spy reads.\n");
    return 0;
}
