/**
 * @file
 * Figure 8: the labelled conflict-miss event train of the shared-L2
 * channel (T->S vs S->T events) and its autocorrelogram.  With 512
 * total channel sets the paper observes the highest coefficient
 * (~0.893) at lag 533 — slightly above 512 because of random conflict
 * misses from surrounding code and other active contexts.
 */

#include "bench/common.hh"
#include "detect/autocorrelation.hh"

using namespace cchunter;
using namespace cchunter::bench;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions defaults;
    defaults.bandwidthBps = 1000.0;
    defaults.quantum = 25000000;
    defaults.quanta = 8;
    defaults.channelSets = 512;
    ScenarioOptions opts = optionsFromConfig(cfg, defaults);

    banner("Figure 8",
           "Oscillatory pattern of L2 conflict misses between trojan "
           "and spy (512 channel sets).");

    const CacheScenarioResult r = runCacheScenario(opts);

    // (a) the labelled event train: plot the label sequence of the
    // first ~2 bit periods.
    const std::size_t train_len =
        std::min<std::size_t>(r.labelSeries.size(), 1200);
    std::vector<double> head(r.labelSeries.begin(),
                             r.labelSeries.begin() + train_len);
    printSeries(head,
                "(a) conflict-miss labels (1 = T->S, 0 = S->T), first "
                "events",
                "event index");

    // (b) autocorrelogram of the full label series.
    printCorrelogram(r.verdict.analysis.correlogram,
                     "(b) autocorrelogram of the conflict-miss train");

    TableWriter t({"metric", "measured", "paper"});
    t.addRow({"conflict events",
              fmtInt(static_cast<long long>(r.labelSeries.size())),
              "-"});
    t.addRow({"dominant lag",
              fmtInt(static_cast<long long>(
                  r.verdict.analysis.dominantLag)),
              "533 (~512 sets)"});
    t.addRow({"peak autocorrelation",
              fmtDouble(r.verdict.analysis.dominantValue, 3), "0.893"});
    t.addRow({"coefficient at lag 512",
              fmtDouble(r.verdict.analysis.correlogram.size() > 512 ?
                            r.verdict.analysis.correlogram[512] : 0.0,
                        3),
              "~0.85"});
    t.addRow({"detected", r.verdict.detected ? "yes" : "no", "yes"});
    t.render(std::cout);
    return 0;
}
