/**
 * @file
 * Ablation: the practical conflict-miss tracker versus the ideal
 * LRU-stack oracle, and the sensitivity of the practical scheme to its
 * bloom-filter sizing (the paper provisions numBlocks bits per
 * generation, 4N total).
 *
 * The question each row answers: does the hardware-affordable
 * approximation still hand the oscillation detector a usable labelled
 * train?
 */

#include "bench/common.hh"

using namespace cchunter;
using namespace cchunter::bench;

namespace
{

ScenarioOptions
baseOptions(const Config& cfg)
{
    ScenarioOptions o;
    o.bandwidthBps = 1000.0;
    o.quantum = 25000000;
    o.quanta = cfg.getUint("quanta", 6);
    o.seed = cfg.getUint("seed", 1);
    return o;
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);

    banner("Ablation: conflict-miss tracker",
           "Practical generation/bloom tracker vs the ideal LRU stack, "
           "and bloom sizing sweep,\non the 512-set cache channel.");

    TableWriter t({"tracker", "conflict events", "dominant lag",
                   "peak autocorr", "detected"});

    {
        ScenarioOptions o = baseOptions(cfg);
        o.idealTracker = true;
        const CacheScenarioResult r = runCacheScenario(o);
        t.addRow({"ideal LRU stack",
                  fmtInt(static_cast<long long>(r.labelSeries.size())),
                  fmtInt(static_cast<long long>(
                      r.verdict.analysis.dominantLag)),
                  fmtDouble(r.verdict.analysis.dominantValue, 3),
                  r.verdict.detected ? "yes" : "no"});
    }

    // The paper's sizing and progressively starved bloom filters.
    struct BloomPoint
    {
        const char* name;
        std::size_t bits; // per generation; 0 = numBlocks (paper)
    };
    const BloomPoint points[] = {
        {"practical, bloom = N bits (paper)", 0},
        {"practical, bloom = N/4 bits", 1024},
        {"practical, bloom = N/16 bits", 256},
        {"practical, bloom = N/64 bits", 64},
    };
    for (const auto& pt : points) {
        ScenarioOptions o = baseOptions(cfg);
        o.trackerParams.bloomBitsPerGeneration = pt.bits;
        const CacheScenarioResult r = runCacheScenario(o);
        t.addRow({pt.name,
                  fmtInt(static_cast<long long>(r.labelSeries.size())),
                  fmtInt(static_cast<long long>(
                      r.verdict.analysis.dominantLag)),
                  fmtDouble(r.verdict.analysis.dominantValue, 3),
                  r.verdict.detected ? "yes" : "no"});
    }

    t.render(std::cout);
    std::printf("\nsmaller filters raise the false-positive rate: "
                "extra spurious conflict labels shift\nthe observed "
                "wavelength further from the nominal set count.  The "
                "paper's 4N-bit\nbudget tracks the oracle's lag "
                "closely, and detection survives every sizing.\n");
    return 0;
}
