/**
 * @file
 * Figure 13: cache covert channel with varying numbers of cache sets
 * (64 / 128 / 256 / 512) used for bit transmission.  All cases show
 * significant autocorrelation periodicity (peaks ~0.95); for smaller
 * set counts, random conflicts from surrounding code and co-runners
 * inflate the observed wavelength beyond the nominal set count.
 */

#include "bench/common.hh"

using namespace cchunter;
using namespace cchunter::bench;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions base;
    base.bandwidthBps = 1000.0;
    base.quantum = 25000000;
    base.quanta = cfg.getUint("quanta", 8);
    base.seed = cfg.getUint("seed", 1);

    banner("Figure 13",
           "Cache channel with 64 / 128 / 256 / 512 sets used for "
           "covert communication.");

    TableWriter t({"#sets", "conflict events", "dominant lag",
                   "lag / #sets", "peak autocorr", "detected"});
    for (std::size_t sets : {64u, 128u, 256u, 512u}) {
        ScenarioOptions o = base;
        o.channelSets = sets;
        const CacheScenarioResult r = runCacheScenario(o);
        printCorrelogram(r.verdict.analysis.correlogram,
                         "autocorrelogram, " + std::to_string(sets) +
                             " channel sets");
        t.addRow({fmtInt(static_cast<long long>(sets)),
                  fmtInt(static_cast<long long>(r.labelSeries.size())),
                  fmtInt(static_cast<long long>(
                      r.verdict.analysis.dominantLag)),
                  fmtDouble(static_cast<double>(
                                r.verdict.analysis.dominantLag) /
                                static_cast<double>(sets),
                            2),
                  fmtDouble(r.verdict.analysis.dominantValue, 3),
                  r.verdict.detected ? "yes" : "no"});
    }
    t.render(std::cout);
    std::printf("\npaper: peak correlation ~0.95 in all cases; the "
                "wavelength exceeds the nominal set\ncount more for "
                "smaller channels (relative noise is larger).\n");
    return 0;
}
