/**
 * @file
 * Figure 10: bandwidth sensitivity test (0.1 / 10 / 1000 bps) across
 * the memory bus, integer divider and cache covert channels.  While
 * the magnitudes of the Δt frequencies shrink at lower bandwidths, the
 * burst-distribution likelihood ratios stay above 0.9, and the cache
 * channel keeps its periodic autocorrelation signature.
 *
 * Runtime note: the 0.1 bps rows simulate 10.1 seconds of machine time
 * (two signalling episodes at the paper's 0.1 s OS quantum) with
 * reduced background-noise intensity; pass e.g. "skip_low=true" to
 * omit them or "quanta_low=..." to change the depth.
 */

#include <algorithm>

#include "bench/common.hh"

using namespace cchunter;
using namespace cchunter::bench;

namespace
{

struct SweepPoint
{
    double bandwidth;
    std::size_t quanta;
    Tick quantum;
    double noiseIntensity;
};

ScenarioOptions
pointOptions(const SweepPoint& pt, const Config& cfg)
{
    ScenarioOptions o;
    o.bandwidthBps = pt.bandwidth;
    o.quanta = pt.quanta;
    o.quantum = pt.quantum;
    o.noiseIntensity = pt.noiseIntensity;
    o.seed = cfg.getUint("seed", 1);
    // All-ones message: every bit signals, so low-bandwidth runs are
    // guaranteed to contain signalling episodes inside the window.
    o.message = Message::fromBits(std::vector<bool>(64, true));
    return o;
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const bool skip_low = cfg.getBool("skip_low", false);
    const std::size_t quanta_low = cfg.getUint("quanta_low", 101);

    std::vector<SweepPoint> points;
    if (!skip_low)
        points.push_back({0.1, quanta_low, 250000000, 0.25});
    points.push_back({10.0, 6, 250000000, 1.0});
    points.push_back({1000.0, 8, 25000000, 1.0});

    banner("Figure 10",
           "Bandwidth test (0.1 / 10 / 1000 bps) on all three covert "
           "channels.");

    TableWriter bus_t({"bandwidth (bps)", "lock events",
                       "burst peak bin", "likelihood ratio",
                       "bursty quanta", "detected"});
    TableWriter divider_t({"bandwidth (bps)", "conflict events",
                       "burst peak bin", "likelihood ratio",
                       "bursty quanta", "detected"});
    TableWriter cache_t({"bandwidth (bps)", "conflict events",
                         "dominant lag", "peak autocorr", "detected"});

    for (const auto& pt : points) {
        ScenarioOptions o = pointOptions(pt, cfg);

        const BusScenarioResult bus = runBusScenario(o);
        Histogram bus_h(128);
        for (const auto& h : bus.quantaHistograms)
            bus_h.merge(h);
        printDensityHistogram(
            bus_h,
            "memory bus @ " + fmtDouble(pt.bandwidth, 1) + " bps",
            "bus locks per dt", 32);
        bus_t.addRow({fmtDouble(pt.bandwidth, 1),
                      fmtInt(static_cast<long long>(bus.lockEvents)),
                      fmtInt(static_cast<long long>(
                          bus.verdict.combined.burstPeakBin)),
                      fmtDouble(std::max(bus.verdict.combined.likelihoodRatio, bus.verdict.recurrence.maxLikelihoodRatio), 3),
                      fmtInt(static_cast<long long>(
                          bus.verdict.recurrence.burstyQuanta)),
                      bus.verdict.detected ? "yes" : "no"});

        const DividerScenarioResult div = runDividerScenario(o);
        Histogram div_h(128);
        for (const auto& h : div.quantaHistograms)
            div_h.merge(h);
        printDensityHistogram(
            div_h,
            "integer divider @ " + fmtDouble(pt.bandwidth, 1) + " bps",
            "wait conflicts per dt", 120);
        divider_t.addRow({fmtDouble(pt.bandwidth, 1),
                      fmtInt(static_cast<long long>(div.conflictEvents)),
                      fmtInt(static_cast<long long>(
                          div.verdict.combined.burstPeakBin)),
                      fmtDouble(std::max(div.verdict.combined.likelihoodRatio, div.verdict.recurrence.maxLikelihoodRatio), 3),
                      fmtInt(static_cast<long long>(
                          div.verdict.recurrence.burstyQuanta)),
                      div.verdict.detected ? "yes" : "no"});

        const CacheScenarioResult cache = runCacheScenario(o);
        printCorrelogram(cache.verdict.analysis.correlogram,
                         "cache channel autocorrelogram @ " +
                             fmtDouble(pt.bandwidth, 1) + " bps");
        cache_t.addRow({fmtDouble(pt.bandwidth, 1),
                        fmtInt(static_cast<long long>(
                            cache.labelSeries.size())),
                        fmtInt(static_cast<long long>(
                            cache.verdict.analysis.dominantLag)),
                        fmtDouble(cache.verdict.analysis.dominantValue,
                                  3),
                        cache.verdict.detected ? "yes" : "no"});
    }

    std::printf("\nmemory bus channel:\n");
    bus_t.render(std::cout);
    std::printf("\ninteger divider channel:\n");
    divider_t.render(std::cout);
    std::printf("\ncache channel:\n");
    cache_t.render(std::cout);
    std::printf("\npaper: likelihood ratios stay above 0.9 even at 0.1 "
                "bps; low-bandwidth cache channels\nbenefit from finer "
                "observation windows (figure 11).\n");
    return 0;
}
