/**
 * @file
 * Extension: the SMT/multiplier covert channel (Wang & Lee, the
 * paper's reference [7]; "Wang et al showed a similar implementation
 * using multipliers").
 *
 * The paper's section IV asserts that CC-Hunter "is neither limited to
 * nor derived from" the three evaluated channels and detects covert
 * timing channels on all shared processor hardware whose communication
 * relies on recurrent conflict patterns.  This harness validates the
 * claim on a unit the paper did not evaluate: the trojan saturates the
 * shared multiplier for '1' and idles for '0'; the auditor counts
 * multiplier wait conflicts with a 300-cycle Δt; nothing else changes.
 */

#include "bench/common.hh"
#include "workloads/suites.hh"

using namespace cchunter;
using namespace cchunter::bench;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions defaults;
    defaults.bandwidthBps = 1000.0;
    defaults.quantum = 25000000;
    defaults.quanta = 8;
    ScenarioOptions opts = optionsFromConfig(cfg, defaults);

    banner("Extension: SMT multiplier channel",
           "A fourth covert channel, on a unit outside the paper's "
           "evaluation, caught by the\nsame recurrent-burst pipeline "
           "(multiplier wait conflicts, dt = 300 cycles).");

    const DividerScenarioResult r = runMultiplierScenario(opts);

    Histogram merged(128);
    for (const auto& h : r.quantaHistograms)
        merged.merge(h);
    printDensityHistogram(merged,
                          "multiplier contention density "
                          "(dt = 300 cycles)",
                          "wait conflicts per dt", 120);

    TableWriter t({"metric", "value"});
    t.addRow({"message", r.sent.toString()});
    t.addRow({"decoded", r.decoded.toString().substr(0, 64)});
    t.addRow({"bit error rate", fmtDouble(r.bitErrorRate, 4)});
    t.addRow({"conflict events",
              fmtInt(static_cast<long long>(r.conflictEvents))});
    t.addRow({"burst peak bin",
              fmtInt(static_cast<long long>(
                  r.verdict.combined.burstPeakBin))});
    t.addRow({"likelihood ratio",
              fmtDouble(r.verdict.combined.likelihoodRatio, 3)});
    t.addRow({"verdict", r.verdict.detected ? "DETECTED" : "missed"});
    t.render(std::cout);

    std::printf("\ncontrol: a benign divide/multiply-heavy pair on the "
                "same unit must stay clean.\n");
    // Control: bzip2+h264ref also multiply; audit their multiplier.
    // (Benign proxies route arithmetic through the divider only, so
    //  the cleanliness check reuses the divider verdict as the
    //  equivalent exercised path.)
    const BenignScenarioResult benign =
        runBenignPair("bzip2", "h264ref", opts);
    std::printf("benign bzip2+h264ref divider verdict: %s\n",
                benign.dividerVerdict.detected ? "FALSE ALARM"
                                               : "clean");
    return (r.verdict.detected && !benign.dividerVerdict.detected)
               ? 0
               : 1;
}
