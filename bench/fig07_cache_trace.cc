/**
 * @file
 * Figure 7: ratios of cache access times between the G1 and G0 cache
 * set groups as observed by the spy on the shared-L2 covert channel,
 * for a random 64-bit credit-card number.  Ratios above 1 decode as
 * '1' (G1 missed), below 1 as '0' (G0 missed).
 */

#include "bench/common.hh"

using namespace cchunter;
using namespace cchunter::bench;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions defaults;
    defaults.bandwidthBps = 1000.0;
    defaults.quantum = 25000000;
    defaults.quanta = 7; // ~70 bit slots: covers the 64-bit message
    ScenarioOptions opts = optionsFromConfig(cfg, defaults);

    banner("Figure 7",
           "Cache Covert Channel: spy's G1/G0 access-time ratio per "
           "transmitted bit.");

    const CacheScenarioResult r = runCacheScenario(opts);

    printSeries(r.spyRatios, "G1/G0 access-time ratio", "bit index");

    RunningStats ones, zeros;
    for (std::size_t i = 1; i < r.spyRatios.size() && i < 64; ++i)
        (r.sent.bitCyclic(i) ? ones : zeros).add(r.spyRatios[i]);

    TableWriter t({"series", "value"});
    t.addRow({"message", r.sent.toString()});
    t.addRow({"decoded", r.decoded.toString()});
    t.addRow({"bit error rate", fmtDouble(r.bitErrorRate, 4)});
    t.addRow({"mean ratio ('1' bits)", fmtDouble(ones.mean(), 2)});
    t.addRow({"mean ratio ('0' bits)", fmtDouble(zeros.mean(), 2)});
    t.render(std::cout);

    std::printf("\npaper: ratio > 1 for '1' (G1 set misses), < 1 for "
                "'0' (G0 set misses).\n");
    return 0;
}
