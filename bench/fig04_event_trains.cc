/**
 * @file
 * Figure 4: event-train plots for the memory bus (lock events) and the
 * integer divider (wait conflicts), showing the thick bands (bursts)
 * whenever the trojan covertly signals a '1'.
 */

#include "bench/common.hh"

using namespace cchunter;
using namespace cchunter::bench;

namespace
{

/** Render an event train as per-bin counts over time (band plot). */
void
printTrain(const EventTrain& train, Tick window, const char* title,
           double ghz = defaultCoreGHz)
{
    constexpr std::size_t columns = 256;
    std::vector<double> density(columns, 0.0);
    const Tick bin = std::max<Tick>(1, window / columns);
    for (const auto& e : train.events()) {
        const auto c = std::min<std::size_t>(
            columns - 1, static_cast<std::size_t>(e.time / bin));
        density[c] += 1.0;
    }
    PlotOptions opts;
    opts.title = title;
    opts.xLabel = "time (ms)";
    asciiBars(std::cout, density, opts);
    std::printf("  events: %zu over %.1f ms; dark bands = bursts "
                "('1' transmissions)\n",
                train.size(),
                static_cast<double>(window) / (ghz * 1e6));
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions defaults;
    defaults.bandwidthBps = 1000.0;
    defaults.quantum = 25000000; // 10 ms: 10 bit slots
    defaults.quanta = 1;
    defaults.trainWindowTicks = 25000000;
    ScenarioOptions opts = optionsFromConfig(cfg, defaults);
    opts.trainWindowTicks = opts.quantum;

    banner("Figure 4",
           "Event trains during covert transmission: bursts appear "
           "whenever the trojan signals '1'.");

    const BusScenarioResult bus = runBusScenario(opts);
    printTrain(bus.eventTrain, opts.trainWindowTicks,
               "(a) memory bus lock events");
    std::printf("  first 10 bits sent: %s\n\n",
                expectedBits(bus.sent, 10).toString().c_str());

    const DividerScenarioResult div = runDividerScenario(opts);
    printTrain(div.eventTrain, opts.trainWindowTicks,
               "(b) integer divider wait conflicts");
    std::printf("  first 10 bits sent: %s\n",
                expectedBits(div.sent, 10).toString().c_str());
    return 0;
}
