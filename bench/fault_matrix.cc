/**
 * @file
 * Fault-matrix robustness sweep: the divider covert channel driven
 * through increasing injected quantum-loss rates.  Reports detection
 * accuracy, mean alarm confidence, and effective window coverage per
 * fault rate, and emits the series as BENCH_faults.json so CI can
 * track detection accuracy vs injected fault rate across commits.
 *
 * Arguments (key=value): bandwidth, quantum, quanta, seed, runs,
 * benign=1 (adds a benign-pair false-alarm column), out=<path>.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "workloads/suites.hh"

using namespace cchunter;
using namespace cchunter::bench;

namespace
{

/** One row of the sweep: aggregates over `runs` seeded repetitions. */
struct SweepPoint
{
    double dropRate = 0.0;
    unsigned runs = 0;
    unsigned detected = 0;
    unsigned benignAlarms = 0;
    unsigned benignRuns = 0;
    double meanConfidence = 0.0;
    double meanCoverage = 0.0;
    std::uint64_t missedQuanta = 0;
    std::uint64_t totalFaults = 0;

    double accuracy() const
    {
        return runs ? static_cast<double>(detected) / runs : 0.0;
    }
};

void
writeJson(const std::string& path, const ScenarioOptions& base,
          unsigned runs, const std::vector<SweepPoint>& sweep)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"benchmark\": \"fault_matrix\",\n");
    std::fprintf(f, "  \"scenario\": \"divider\",\n");
    std::fprintf(f, "  \"bandwidth_bps\": %.1f,\n", base.bandwidthBps);
    std::fprintf(f, "  \"quantum\": %llu,\n",
                 static_cast<unsigned long long>(base.quantum));
    std::fprintf(f, "  \"quanta\": %llu,\n",
                 static_cast<unsigned long long>(base.quanta));
    std::fprintf(f, "  \"runs_per_rate\": %u,\n", runs);
    std::fprintf(f, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const SweepPoint& p = sweep[i];
        std::fprintf(
            f,
            "    {\"drop_rate\": %.2f, \"runs\": %u, "
            "\"detected\": %u, \"accuracy\": %.4f, "
            "\"mean_confidence\": %.4f, \"mean_coverage\": %.4f, "
            "\"missed_quanta\": %llu, \"total_faults\": %llu, "
            "\"benign_runs\": %u, \"benign_false_alarms\": %u}%s\n",
            p.dropRate, p.runs, p.detected, p.accuracy(),
            p.meanConfidence, p.meanCoverage,
            static_cast<unsigned long long>(p.missedQuanta),
            static_cast<unsigned long long>(p.totalFaults),
            p.benignRuns, p.benignAlarms,
            i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions base;
    base.bandwidthBps = cfg.getDouble("bandwidth", 10000.0);
    base.quantum = cfg.getUint("quantum", 2500000);
    base.quanta = cfg.getUint("quanta", 16);
    base.seed = cfg.getUint("seed", 1);
    base.noiseProcesses = 0;
    const auto runs =
        static_cast<unsigned>(cfg.getUint("runs", 3));
    const bool benign = cfg.getUint("benign", 0) != 0;
    const std::string out = cfg.getString("out", "BENCH_faults.json");

    banner("Fault matrix: detection vs injected quantum loss",
           "The divider channel must keep its likelihood-ratio "
           "verdict while the daemon loses scheduling quanta; "
           "confidence and coverage degrade honestly.");

    const std::vector<double> rates = {0.0, 0.05, 0.10, 0.20, 0.30};
    std::vector<SweepPoint> sweep;
    TableWriter t({"drop rate", "detected", "accuracy", "confidence",
                   "coverage", "missed", "faults"});
    for (const double rate : rates) {
        SweepPoint p;
        p.dropRate = rate;
        p.runs = runs;
        for (unsigned r = 0; r < runs; ++r) {
            ScenarioOptions opts = base;
            // Distinct fault schedules per repetition, reproducible
            // across invocations.
            opts.faults.seed = 100 * (r + 1) + base.seed;
            opts.faults.dropQuantumRate = rate;
            const DividerScenarioResult res =
                runDividerScenario(opts);
            p.detected += res.verdict.detected;
            p.meanConfidence += res.confidence;
            p.meanCoverage += res.degraded.windowCoverage;
            p.missedQuanta += res.degraded.missedQuanta;
            p.totalFaults += res.degraded.totalFaults();
            if (benign) {
                ScenarioOptions bopts = opts;
                const BenignScenarioResult b =
                    runBenignPair("gobmk", "sjeng", bopts);
                ++p.benignRuns;
                p.benignAlarms += b.busVerdict.detected +
                                  b.dividerVerdict.detected +
                                  b.cacheVerdict.detected;
            }
        }
        p.meanConfidence /= runs;
        p.meanCoverage /= runs;
        sweep.push_back(p);
        t.addRow({fmtDouble(rate, 2),
                  std::to_string(p.detected) + "/" +
                      std::to_string(p.runs),
                  fmtDouble(p.accuracy(), 3),
                  fmtDouble(p.meanConfidence, 3),
                  fmtDouble(p.meanCoverage, 3),
                  std::to_string(p.missedQuanta),
                  std::to_string(p.totalFaults)});
    }
    t.render(std::cout);
    if (benign) {
        std::printf("\nbenign false alarms:");
        for (const SweepPoint& p : sweep)
            std::printf(" %.2f:%u/%u", p.dropRate, p.benignAlarms,
                        p.benignRuns * 3);
        std::printf("\n");
    }

    writeJson(out, base, runs, sweep);

    // Exit non-zero if detection collapses within the acceptance
    // envelope (<= 10% loss) so CI fails loudly.
    for (const SweepPoint& p : sweep)
        if (p.dropRate <= 0.10 + 1e-9 && p.detected < p.runs) {
            std::fprintf(stderr,
                         "FAIL: detection lost at drop rate %.2f "
                         "(%u/%u)\n",
                         p.dropRate, p.detected, p.runs);
            return 1;
        }
    return 0;
}
