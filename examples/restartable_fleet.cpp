/**
 * @file
 * Restart-safe fleet audit: checkpoint the audit to disk, kill it
 * mid-run, then resume and finish with a byte-identical incident
 * stream.
 *
 * A fleet audit over thousands of tenants can take hours; the machine
 * running it will eventually be rebooted, OOM-killed, or preempted.
 * This example shows the crash-safety loop end to end:
 *
 *   1. run a persisted audit with an injected crash halfway through
 *      (simulateCrashAfterBatches stands in for kill -9),
 *   2. inspect what survived on disk — an atomic snapshot plus an
 *      append-only journal, both checksummed per record,
 *   3. resume from that directory: already-audited tenants are
 *      restored, only the remainder is re-audited,
 *   4. verify the resumed stream hashes identically to an
 *      uninterrupted baseline run.
 *
 * Build & run:
 *   cmake -B build -S . && cmake --build build -j
 *   ./build/examples/restartable_fleet
 */

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "fleet/fleet_auditor.hh"
#include "persist/recovery.hh"
#include "sim/stats_report.hh"

using namespace cchunter;

int
main()
{
    std::printf("== Restart-safe fleet audit ==\n\n");

    // The default eight-tenant synthetic fleet: planted divider and
    // cache channels, benign pairs, a degraded host.
    const TenantRegistry registry = TenantRegistry::synthetic({});
    const std::string dir = "restartable_fleet_state";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    // Baseline: the answer an uninterrupted audit produces.
    FleetAuditParams params;
    params.shards = 2;
    FleetAuditReport baseline = FleetAuditor(registry, params).run();
    const std::uint64_t truth = baseline.incidents.streamHash();
    std::printf("uninterrupted stream hash: 0x%016llx\n\n",
                static_cast<unsigned long long>(truth));

    // 1. Persisted run, killed after five of eight tenants.  Every
    //    finished batch is journaled as it lands; every fourth batch
    //    the journal is compacted into an atomically-replaced
    //    snapshot.
    params.persist.dir = dir;
    params.persist.checkpointIntervalBatches = 4;
    params.simulateCrashAfterBatches = 5;
    FleetAuditReport crashed = FleetAuditor(registry, params).run();
    std::printf("crash injected after %llu batches (crashed=%s):\n",
                static_cast<unsigned long long>(
                    params.simulateCrashAfterBatches),
                crashed.crashed ? "yes" : "no");
    std::printf("  checkpoints written: %llu\n",
                static_cast<unsigned long long>(
                    crashed.persist.checkpointsWritten));
    std::printf("  journal appends:     %llu\n\n",
                static_cast<unsigned long long>(
                    crashed.persist.journalAppends));

    // 2. What survived on disk, as the recovery loader sees it.
    persist::PersistStats peek;
    const persist::RecoveredFleetState salvaged =
        persist::recoverFleetState(
            params.persist, persist::registryFingerprint(registry),
            peek);
    std::printf("on-disk state recovers %zu tenant batches "
                "(%llu from snapshot, %llu from journal)\n\n",
                salvaged.batches.size(),
                static_cast<unsigned long long>(
                    peek.restoredFromSnapshot),
                static_cast<unsigned long long>(
                    peek.restoredFromJournal));

    // 3. Resume.  Restored tenants are NOT re-audited; the fleet
    //    picks up where the crash left it and finishes the rest.
    params.simulateCrashAfterBatches = 0;
    params.persist.resume = true;
    FleetAuditReport resumed = FleetAuditor(registry, params).run();
    std::printf("resumed: %llu tenants restored from disk, %zu "
                "re-audited\n",
                static_cast<unsigned long long>(
                    resumed.persist.restoredTenants),
                registry.size() - static_cast<std::size_t>(
                                      resumed.persist.restoredTenants));

    // 4. The resumed answer must be the uninterrupted answer.
    const std::uint64_t resumedHash = resumed.incidents.streamHash();
    std::printf("resumed stream hash:       0x%016llx\n\n",
                static_cast<unsigned long long>(resumedHash));
    std::printf("incident stream (canonical order):\n%s\n",
                resumed.incidents.streamText().c_str());
    dumpStatEntries(resumed.statEntries(), std::cout,
                    "resumed fleet audit");

    std::filesystem::remove_all(dir);
    if (resumedHash != truth) {
        std::fprintf(stderr, "resumed stream diverged from the "
                             "uninterrupted baseline\n");
        return 1;
    }
    std::printf("\nresumed audit is byte-identical to the "
                "uninterrupted one.\n");
    return 0;
}
