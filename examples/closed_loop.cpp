/**
 * @file
 * Closed loop, end to end on one machine: a divider covert channel is
 * detected mid-run, the auto-response quarantines the implicated
 * context pair, and the residual probes price what the response
 * bought — how much bandwidth the spy lost and what a benign pair
 * would have paid at each rung of the ladder.
 *
 * Usage: closed_loop [quanta=8] [quantum=2500000] [seed=1]
 *                    [bandwidth=10000]
 */

#include <cstdio>
#include <iostream>

#include "respond/residual.hh"
#include "util/config.hh"
#include "util/table_writer.hh"

using namespace cchunter;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    OnlineAuditOptions options;
    options.workload = AuditedWorkload::Divider;
    options.scenario.quanta = cfg.getUint("quanta", 8);
    options.scenario.quantum = cfg.getUint("quantum", 2500000);
    options.scenario.seed = cfg.getUint("seed", 1);
    options.scenario.bandwidthBps =
        cfg.getDouble("bandwidth", 10000.0);
    options.scenario.noiseProcesses = 0;
    options.online.clusteringIntervalQuanta = 4;

    // 1. Detect and respond in the same run: the first alarm triggers
    //    an in-run quarantine of the trojan/spy context pair.
    ResponsePlan quarantine;
    quarantine.level = ResponseLevel::Quarantine;
    options.autoRespond.enabled = true;
    options.autoRespond.plan = quarantine;
    options.autoRespond.alarmThreshold = 1;
    const OnlineAuditResult mitigated = runOnlineAudit(options);

    options.autoRespond.enabled = false;
    const OnlineAuditResult open = runOnlineAudit(options);

    std::printf("divider covert channel, closed loop\n\n");
    if (mitigated.response.engaged)
        std::printf("auto-response engaged %s at quantum %llu "
                    "(alarm-triggered)\n",
                    responseLevelName(mitigated.response.level),
                    static_cast<unsigned long long>(
                        mitigated.response.quantum));
    else
        std::printf("auto-response never engaged — no alarm\n");
    std::printf("spy decoded %llu wire bits unmitigated, "
                "%llu with the loop closed\n\n",
                static_cast<unsigned long long>(
                    open.channel.wireBitsDecoded),
                static_cast<unsigned long long>(
                    mitigated.channel.wireBitsDecoded));

    // 2. Price every rung: residual bandwidth through the protocol
    //    decoder versus the benign pair's slowdown.
    const ResponseLevel ladder[] = {
        ResponseLevel::Observe, ResponseLevel::RateLimit,
        ResponseLevel::TemporalPartition, ResponseLevel::Quarantine};
    double baselineBps = 0.0;
    TableWriter table({"response", "residual bps", "reduction",
                       "benign tax", "still detected"});
    for (const ResponseLevel level : ladder) {
        ResponsePlan plan;
        plan.level = level;
        const ResidualProbe probe = probeResidualBandwidth(
            AuditedWorkload::Divider, options, plan);
        if (level == ResponseLevel::Observe)
            baselineBps = probe.effectiveBandwidthBps;
        const TaxProbe tax = measureBenignTax(options, plan);
        table.addRow(
            {responseLevelName(level),
             fmtDouble(probe.effectiveBandwidthBps, 1),
             fmtDouble(bandwidthReduction(
                           baselineBps, probe.effectiveBandwidthBps),
                       3),
             fmtDouble(tax.tax, 3), probe.detected ? "yes" : "no"});
    }
    table.render(std::cout);

    std::printf("\nquarantine kills the channel outright; "
                "temporal partitioning halves it for half the tax.\n");
    return mitigated.response.engaged ? 0 : 1;
}
