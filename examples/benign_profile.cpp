/**
 * @file
 * Benign profile: audit ordinary workload pairs and confirm CC-Hunter
 * stays quiet.  Every proxy pair from the false-alarm study runs as
 * hyperthreads under full auditing (bus + divider in one pass, L2 in a
 * second); any alarm is a bug.
 *
 * Usage: benign_profile [quanta=3] [quantum=125000000] [pairs=10]
 */

#include <cstdio>
#include <iostream>

#include "scenario/experiment.hh"
#include "util/config.hh"
#include "util/table_writer.hh"
#include "workloads/suites.hh"

using namespace cchunter;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions opts;
    opts.quanta = cfg.getUint("quanta", 3);
    opts.quantum = cfg.getUint("quantum", 125000000);
    opts.seed = cfg.getUint("seed", 1);
    opts.faults = FaultPlan::fromConfig(cfg);
    const std::size_t max_pairs = cfg.getUint("pairs", 10);

    TableWriter table({"pair", "bus locks LR", "divider LR",
                       "cache peak", "alarms"});
    unsigned total_alarms = 0;
    std::size_t count = 0;
    PipelineStats pipeline;
    DegradedStats degraded;

    for (const auto& [a, b] : falseAlarmPairs()) {
        if (count++ >= max_pairs)
            break;
        const BenignScenarioResult r = runBenignPair(a, b, opts);
        const unsigned alarms = r.busVerdict.detected +
                                r.dividerVerdict.detected +
                                r.cacheVerdict.detected;
        total_alarms += alarms;
        pipeline.accumulate(r.pipeline);
        degraded.accumulate(r.degraded);
        table.addRow(
            {a + "+" + b,
             fmtDouble(r.busVerdict.combined.likelihoodRatio, 3),
             fmtDouble(r.dividerVerdict.combined.likelihoodRatio, 3),
             fmtDouble(r.cacheVerdict.analysis.dominantValue, 3),
             alarms == 0 ? "none" : std::to_string(alarms)});
    }

    std::printf("benign workload audit (%zu pairs, all three "
                "resources)\n\n",
                count);
    table.render(std::cout);
    std::printf("\ntotal false alarms: %u (expected: 0; likelihood "
                "ratios below the 0.5 threshold\nand no sustained "
                "autocorrelation periodicity)\n",
                total_alarms);
    std::printf("pipeline (all pairs): %s\n",
                pipeline.summary().c_str());
    if (opts.faults.enabled())
        std::printf("degraded (all pairs): %s\n",
                    degraded.summary().c_str());
    return total_alarms == 0 ? 0 : 1;
}
