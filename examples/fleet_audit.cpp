/**
 * @file
 * Fleet audit quickstart: audit a rack of simulated tenant machines at
 * once and triage the fleet-level incidents.
 *
 * A cloud operator rarely cares about one alarm on one host; the
 * actionable signal is "the same covert channel is live on three of my
 * machines".  This example builds a small mixed fleet — divider and
 * cache covert channels, a benign pair that must stay quiet, and one
 * degraded host losing scheduling quanta — shards it across the
 * machine's cores with a FleetAuditor, and prints the deduplicated,
 * severity-scored incident stream plus the fleet stats dump.
 *
 * Build & run:
 *   cmake -B build -S . && cmake --build build -j
 *   ./build/examples/fleet_audit
 */

#include <cstdio>
#include <iostream>

#include "fleet/fleet_auditor.hh"
#include "sim/stats_report.hh"

using namespace cchunter;

int
main()
{
    std::printf("== Fleet audit: sharded multi-tenant CC-Hunter ==\n\n");

    // A six-tenant fleet.  Tenants 0/2 and 1/3 carry planted covert
    // channels; the shared seed on the divider pair means the *same*
    // channel binary landed on both hosts — the cross-tenant
    // correlation case.  Tenant 4 is a benign pair (it must not
    // alarm) and tenant 5 is a degraded host whose daemon loses 10%
    // of its scheduling quanta.
    SyntheticFleetOptions options;
    options.tenants = 6;
    options.seed = 1;
    options.quanta = 8;
    options.mix = {AuditedWorkload::Divider, AuditedWorkload::Cache,
                   AuditedWorkload::Divider, AuditedWorkload::Cache,
                   AuditedWorkload::BenignPair,
                   AuditedWorkload::Divider};
    options.distinctSeeds = false; // same channel on every divider host
    TenantRegistry registry = TenantRegistry::synthetic(options);

    {
        TenantConfig degraded = registry.at(5);
        degraded.name = "degraded-host";
        degraded.audit.scenario.faults.seed = 7;
        degraded.audit.scenario.faults.dropQuantumRate = 0.10;
        TenantRegistry patched;
        for (const TenantConfig& tenant : registry.tenants())
            patched.add(tenant.id == 5 ? degraded : tenant);
        registry = std::move(patched);
    }

    std::printf("fleet of %zu tenants:\n", registry.size());
    for (const TenantConfig& tenant : registry.tenants())
        std::printf("  tenant %u (%s): %s workload, seed %llu\n",
                    tenant.id, tenant.name.c_str(),
                    auditedWorkloadName(tenant.audit.workload),
                    static_cast<unsigned long long>(
                        tenant.audit.scenario.seed));

    // Shard the fleet across the available cores.  The incident
    // stream below is bit-identical for ANY shard/worker/thread
    // count — parallelism only buys wall-clock time.
    FleetAuditParams params;
    params.shards = 0; // size to the hardware
    FleetAuditor auditor(registry, params);
    std::printf("\nauditing on %zu shard(s)...\n\n",
                auditor.effectiveShards());
    FleetAuditReport report = auditor.run();

    std::printf("incident stream (canonical order):\n%s\n",
                report.incidents.streamText().c_str());
    std::printf("incident stream hash: 0x%016llx\n\n",
                static_cast<unsigned long long>(
                    report.incidents.streamHash()));

    for (const Incident& incident : report.incidents.incidents()) {
        if (!incident.fleetWide)
            continue;
        std::printf("fleet-wide: the same %s/%s channel (sig "
                    "0x%016llx) is live on %zu tenants\n",
                    monitorTargetName(incident.unit),
                    alarmKindName(incident.kind),
                    static_cast<unsigned long long>(
                        incident.signature),
                    incident.correlatedTenants.size());
    }

    std::printf("\n");
    dumpStatEntries(report.statEntries(), std::cout, "fleet audit");

    // The benign tenant must not have produced an incident.
    for (const Incident& incident : report.incidents.incidents())
        if (!incident.fleetWide && incident.tenant == 4) {
            std::fprintf(stderr,
                         "unexpected incident on the benign tenant\n");
            return 1;
        }
    return 0;
}
