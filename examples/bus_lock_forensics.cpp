/**
 * @file
 * Bus-lock forensics: sweep a memory-bus covert channel across
 * bandwidths and watch the indicator statistics CC-Hunter extracts —
 * the lock-density histograms, the likelihood ratios, and the final
 * verdicts.  Demonstrates that the detector keys on the *pattern* of
 * conflicts rather than their absolute rate.
 *
 * Usage: bus_lock_forensics [quanta=6] [seed=1]
 */

#include <cstdio>
#include <iostream>

#include "scenario/experiment.hh"
#include "util/config.hh"
#include "util/table_writer.hh"

using namespace cchunter;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);

    const FaultPlan fault_plan = FaultPlan::fromConfig(cfg);

    TableWriter table({"bandwidth (bps)", "locks", "burst peak bin",
                       "likelihood", "BER", "verdict"});
    bool all_detected = true;
    PipelineStats pipeline;
    DegradedStats degraded;

    for (double bandwidth : {100.0, 500.0, 2000.0}) {
        ScenarioOptions opts;
        opts.bandwidthBps = bandwidth;
        opts.quantum = 25000000;
        opts.quanta = cfg.getUint("quanta", 6);
        opts.seed = cfg.getUint("seed", 1);
        opts.faults = fault_plan;

        const BusScenarioResult r = runBusScenario(opts);
        all_detected &= r.verdict.detected;
        pipeline.accumulate(r.pipeline);
        degraded.accumulate(r.degraded);
        table.addRow({fmtDouble(bandwidth, 0),
                      fmtInt(static_cast<long long>(r.lockEvents)),
                      fmtInt(static_cast<long long>(
                          r.verdict.combined.burstPeakBin)),
                      fmtDouble(r.verdict.combined.likelihoodRatio, 3),
                      fmtDouble(r.bitErrorRate, 3),
                      r.verdict.detected ? "DETECTED" : "missed"});
    }

    std::printf("memory-bus covert channel forensics "
                "(atomic-unaligned bus locks as indicator events)\n\n");
    table.render(std::cout);
    std::printf("\nacross bandwidths the burst density per delta-t "
                "stays tied to the lock pacing,\nso the likelihood "
                "ratio remains decisive.\n");
    std::printf("pipeline (all sweeps): %s\n",
                pipeline.summary().c_str());
    if (fault_plan.enabled())
        std::printf("degraded (all sweeps): %s\n",
                    degraded.summary().c_str());
    return all_detected ? 0 : 1;
}
