/**
 * @file
 * Quickstart: catch a covert timing channel in ~80 lines.
 *
 * We build the simulated machine, plant an integer-divider trojan/spy
 * pair on one SMT core, program the CC-Auditor on that divider, let the
 * software daemon record a few OS time quanta, and ask CC-Hunter for a
 * verdict.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * Pass faults.* keys (e.g. faults.drop_quantum=0.1) to watch the
 * audit degrade gracefully instead of failing, or evasion.* keys
 * (e.g. evasion.strategy=gaps) to let the pair randomize its
 * transmission schedule against the detector.
 */

#include <cstdio>
#include <memory>
#include <optional>

#include "auditor/cc_auditor.hh"
#include "auditor/daemon.hh"
#include "channels/divider_channel.hh"
#include "faults/fault_injector.hh"
#include "sim/machine.hh"
#include "util/config.hh"

using namespace cchunter;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const FaultPlan fault_plan = FaultPlan::fromConfig(cfg);
    // 1. The machine: a quad-core SMT processor at 2.5 GHz (the
    //    paper's evaluation platform).  Default parameters throughout.
    Machine machine;

    // 2. The attack: a trojan/spy pair exchanging a secret through
    //    contention on core 0's shared integer divider, at 1000 bps.
    ChannelTiming timing;
    timing.start = 1000;
    timing.bandwidthBps = 1000.0;
    // Optional evasive schedule: both ends share the plan (seed and
    // all), so the channel still decodes while its contention
    // footprint loses the regularity the detector keys on.
    timing.evasion = EvasionPlan::fromConfig(cfg);
    if (timing.evasion.enabled())
        std::printf("evasion: strategy=%s seed=%llu\n",
                    evasionStrategyName(timing.evasion.strategy),
                    static_cast<unsigned long long>(
                        timing.evasion.seed));

    Rng rng(42);
    const Message secret = Message::random64(rng); // a credit card no.

    DividerTrojanParams trojan;
    trojan.timing = timing;
    trojan.message = secret;
    machine.addProcess(std::make_unique<DividerTrojan>(trojan),
                       /*pinned context=*/0);

    DividerSpyParams spy_params;
    spy_params.timing = timing;
    auto spy_owned = std::make_unique<DividerSpy>(spy_params);
    DividerSpy* spy = spy_owned.get();
    machine.addProcess(std::move(spy_owned), /*pinned context=*/1);

    // 3. The defence: program the CC-Auditor (a privileged operation)
    //    to watch core 0's divider, and start the software daemon that
    //    records the histogram buffers every OS time quantum.
    CCAuditor auditor(machine);
    const AuditKey key = requestAuditKey(/*is_admin=*/true);
    auditor.monitorDivider(key, /*slot=*/0, /*core=*/0);
    AuditDaemon daemon(machine, auditor);

    std::optional<FaultInjector> injector;
    if (fault_plan.enabled()) {
        injector.emplace(fault_plan);
        daemon.attachFaultInjector(&*injector);
        std::printf("fault injection: %s\n",
                    fault_plan.summary().c_str());
    }

    // 4. Run four OS time quanta (0.4 s of machine time).
    machine.runQuanta(4);

    // 5. Analyse: recurrent-burst detection on the recorded densities.
    const ContentionVerdict verdict = daemon.analyzeContention(0);

    std::printf("secret sent:    %s\n", secret.toString().c_str());
    std::printf("spy decoded:    %s (first pass of %zu)\n",
                spy->decoded().toString().substr(0, 64).c_str(),
                spy->decodedSlots().size());
    std::printf("conflict events: %llu\n",
                static_cast<unsigned long long>(
                    machine.divider(0).totalConflicts()));
    std::printf("verdict:        %s\n", verdict.summary().c_str());
    std::printf("pipeline:       %s\n",
                daemon.pipelineStats().summary().c_str());
    if (injector) {
        std::printf("degraded:       %s\n",
                    daemon.degradedStats().summary().c_str());
        std::printf("confidence:     %.3f\n",
                    daemon.contentionConfidence(0, verdict));
    }
    std::printf("\nCC-Hunter %s the covert timing channel "
                "(likelihood ratio %.3f, threshold 0.5).\n",
                verdict.detected ? "DETECTED" : "missed",
                verdict.combined.likelihoodRatio);
    return verdict.detected ? 0 : 1;
}
