/**
 * @file
 * Incident response: the full operator workflow on one machine.
 *
 *  1. A cross-tenant L2 prime+probe channel runs among noisy
 *     neighbours; the CC-Auditor watches core 0's cache.
 *  2. The daemon's oscillation analysis raises the alarm.
 *  3. The conflict records attribute the channel to a process pair.
 *  4. The mitigator migrates one party to another core.
 *  5. Continued auditing confirms the channel is severed, and the
 *     machine statistics report summarises the episode.
 *
 * Usage: incident_response [quanta=6] [sets=256] [seed=9]
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>

#include "auditor/cc_auditor.hh"
#include "auditor/daemon.hh"
#include "channels/cache_channel.hh"
#include "detect/detector.hh"
#include "faults/fault_injector.hh"
#include "mitigate/mitigator.hh"
#include "sim/machine.hh"
#include "sim/stats_report.hh"
#include "util/config.hh"
#include "workloads/suites.hh"

using namespace cchunter;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    const std::size_t quanta = cfg.getUint("quanta", 6);
    const std::size_t sets = cfg.getUint("sets", 256);
    const std::uint64_t seed = cfg.getUint("seed", 9);

    // --- the machine and its tenants -------------------------------
    MachineParams mp;
    mp.mem.l2 = CacheGeometry{256 * 1024, 1, 64};
    mp.scheduler.quantum = 25000000;
    Machine machine(mp);

    ChannelTiming timing;
    timing.start = 1000;
    timing.bandwidthBps = 1000.0;
    Rng rng(seed);
    const Message secret = Message::random64(rng);

    CacheChannelLayout layout;
    layout.l2NumSets = mp.mem.l2.numSets();
    layout.channelSets = sets;

    CacheTrojanParams tp;
    tp.timing = timing;
    tp.message = secret;
    tp.layout = layout;
    tp.roundsPerBit = 4;
    Process& trojan =
        machine.addProcess(std::make_unique<CacheTrojan>(tp), 0);

    CacheSpyParams sp;
    sp.timing = timing;
    sp.layout = layout;
    sp.noiseEvery = 24;
    sp.roundsPerBit = 4;
    Process& spy =
        machine.addProcess(std::make_unique<CacheSpy>(sp), 1);

    for (int i = 0; i < 3; ++i)
        machine.addProcess(makeBenchmark("mcf", seed + 10 + i));

    // --- the audit --------------------------------------------------
    CCAuditor auditor(machine);
    const AuditKey key = requestAuditKey(/*is_admin=*/true);
    auditor.monitorCache(key, 0, /*core=*/0);
    AuditDaemon daemon(machine, auditor);

    const FaultPlan fault_plan = FaultPlan::fromConfig(cfg);
    std::optional<FaultInjector> injector;
    if (fault_plan.enabled()) {
        injector.emplace(fault_plan);
        daemon.attachFaultInjector(&*injector);
        std::printf("[faults]  %s\n", fault_plan.summary().c_str());
    }

    machine.runQuanta(quanta);
    const OscillationVerdict verdict = daemon.analyzeOscillation(0);
    std::printf("[audit]   %s\n", verdict.summary().c_str());
    if (injector)
        std::printf("[audit]   confidence %.3f under injected faults "
                    "(%s)\n",
                    daemon.oscillationConfidence(0),
                    daemon.degradedStats().summary().c_str());
    if (!verdict.detected) {
        std::printf("no channel found; nothing to do.\n");
        return 1;
    }

    // --- attribution -------------------------------------------------
    Mitigator mitigator(machine, daemon);
    const auto suspects = mitigator.suspectPair(0);
    std::printf("[attrib]  suspect pair: pid %u and pid %u "
                "(trojan pid %u, spy pid %u)\n",
                suspects.first, suspects.second, trojan.pid(),
                spy.pid());

    // --- response ----------------------------------------------------
    const MitigationReport report =
        mitigator.respond(MonitorTarget::L2Cache, 0);
    std::printf("[respond] %s\n", report.summary().c_str());

    // --- verification -------------------------------------------------
    // A noisy neighbour inherits the vacated context, so conflict
    // misses keep flowing — but they are random.  The audit question
    // is whether the *oscillation* survives, so re-run the analysis on
    // the post-mitigation records only.
    machine.runQuanta(1); // the re-pinning takes effect here
    const std::uint64_t switch_quantum = daemon.quantaRecorded();
    machine.runQuanta(quanta);

    std::vector<double> post_labels;
    for (const auto& r : daemon.conflictRecords(0)) {
        if (r.quantum < switch_quantum)
            continue;
        post_labels.push_back(r.replacerPid != invalidProcess &&
                                      r.victimPid != invalidProcess &&
                                      r.replacerPid < r.victimPid
                                  ? 1.0
                                  : 0.0);
    }
    CCHunter hunter;
    const OscillationVerdict after =
        hunter.analyzeOscillation(post_labels);
    std::printf("[verify]  post-mitigation audit (%zu conflict events, "
                "random-neighbour traffic): %s\n",
                post_labels.size(), after.summary().c_str());

    std::printf("\n");
    dumpProcessStats(machine, std::cout);
    std::printf("\n");
    dumpMachineStats(machine, std::cout);
    dumpStatEntries(pipelineStatEntries(daemon.pipelineStats()),
                    std::cout, "audit pipeline");
    if (injector)
        dumpStatEntries(degradedStatEntries(daemon.degradedStats()),
                        std::cout, "degraded operation");

    const bool severed = !after.detected;
    std::printf("\nchannel severed: %s\n", severed ? "yes" : "no");
    return severed ? 0 : 1;
}
