/**
 * @file
 * Cloud-tenant audit: the cross-VM L2 prime+probe channel.
 *
 * The scenario the paper's introduction motivates: two colluding
 * tenants (a trojan VM with access to a secret and a spy VM) share a
 * physical core in a cloud, and exfiltrate data by replacing each
 * other's cache lines in two agreed groups of L2 sets.  Noisy
 * neighbour tenants run alongside.  The host's administrator audits
 * the L2 with CC-Hunter's conflict-miss tracker and inspects the
 * labelled conflict-miss train for oscillation.
 *
 * Usage: cloud_tenant_audit [bandwidth=1000] [sets=512] [quanta=8]
 */

#include <cstdio>
#include <iostream>

#include "scenario/experiment.hh"
#include "util/ascii_plot.hh"
#include "util/config.hh"

using namespace cchunter;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);
    ScenarioOptions opts;
    opts.bandwidthBps = cfg.getDouble("bandwidth", 1000.0);
    opts.channelSets = cfg.getUint("sets", 512);
    opts.quanta = cfg.getUint("quanta", 8);
    opts.quantum = cfg.getUint("quantum", 25000000);
    opts.noiseProcesses =
        static_cast<unsigned>(cfg.getUint("noise", 3));
    opts.seed = cfg.getUint("seed", 7);
    opts.faults = FaultPlan::fromConfig(cfg);

    std::printf("cloud tenant audit: prime+probe channel over %zu L2 "
                "sets at %.0f bps,\nwith %u noisy-neighbour "
                "processes\n\neffective configuration:\n%s\n",
                opts.channelSets, opts.bandwidthBps,
                opts.noiseProcesses,
                scenarioConfig(opts).dump().c_str());

    const CacheScenarioResult r = runCacheScenario(opts);

    std::printf("secret sent:     %s\n", r.sent.toString().c_str());
    std::printf("spy decoded:     %s\n", r.decoded.toString().c_str());
    std::printf("bit error rate:  %.3f\n", r.bitErrorRate);
    std::printf("conflict misses flagged by the tracker: %llu\n",
                static_cast<unsigned long long>(r.trackedConflicts));
    std::printf("\nlabelled conflict-miss train "
                "(1 = trojan evicts spy, 0 = spy evicts trojan):\n");

    PlotOptions plot;
    plot.title = "autocorrelogram of the conflict-miss train";
    plot.xLabel = "lag (events)";
    plot.yFromZero = true;
    asciiPlot(std::cout, r.verdict.analysis.correlogram, plot);

    std::printf("\nverdict:  %s\n", r.verdict.summary().c_str());
    std::printf("pipeline: %s\n", r.pipeline.summary().c_str());
    if (opts.faults.enabled())
        std::printf("degraded: %s\nconfidence: %.3f\n",
                    r.degraded.summary().c_str(), r.confidence);
    std::printf("the dominant lag (%zu) tracks the number of channel "
                "sets (%zu): the spy and trojan\nalternate evicting "
                "each other once per set per bit.\n",
                r.verdict.analysis.dominantLag, opts.channelSets);
    return r.verdict.detected ? 0 : 1;
}
