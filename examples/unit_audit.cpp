/**
 * @file
 * Unit audit: run any registered monitor unit's channel by name.
 *
 * The monitor-unit registry (units/unit_registry.hh) is what makes
 * this example one page: the workload is looked up by its registry
 * name, the machine, trojan/spy pair and auditor slot come from the
 * unit's descriptor hooks, and the verdict is judged by the
 * descriptor's analysis policy.  A sixth registered unit would be
 * runnable here with no change to this file.
 *
 * Usage: unit_audit [workload=tlb] [bandwidth=1000] [quanta=8]
 *                   [protocol.enabled=true] [protocol.repeats=3]
 *
 * An unknown workload name fails fast and lists the valid names,
 * straight from the registry.
 */

#include <cstdio>

#include "scenario/experiment.hh"
#include "util/config.hh"

using namespace cchunter;

int
main(int argc, char** argv)
{
    const Config cfg = Config::fromArgs(argc, argv);

    OnlineAuditOptions options;
    options.workload =
        auditedWorkloadFromName(cfg.getString("workload", "tlb"));
    options.scenario.bandwidthBps = cfg.getDouble("bandwidth", 1000.0);
    options.scenario.quanta = cfg.getUint("quanta", 8);
    options.scenario.quantum = cfg.getUint("quantum", 25000000);
    options.scenario.seed = cfg.getUint("seed", 7);
    options.scenario.noiseProcesses =
        static_cast<unsigned>(cfg.getUint("noise", 3));

    // The link-layer protocol adversary: preamble sync, frame
    // retransmission, Hamming(7,4) — available to every channel.
    options.scenario.protocol.enabled =
        cfg.getBool("protocol.enabled", false);
    options.scenario.protocol.frameNibbles = static_cast<std::size_t>(
        cfg.getUint("protocol.frame_nibbles",
                    options.scenario.protocol.frameNibbles));
    options.scenario.protocol.repeats = static_cast<std::size_t>(
        cfg.getUint("protocol.repeats",
                    options.scenario.protocol.repeats));
    options.scenario.protocol.ackGapBits = static_cast<std::size_t>(
        cfg.getUint("protocol.ack_gap_bits",
                    options.scenario.protocol.ackGapBits));
    options.scenario.protocol.validate();

    const UnitDescriptor& unit =
        UnitRegistry::instance().require(UnitRegistry::instance()
                                             .byWorkload(options.workload)
                                             ->id);
    std::printf("auditing the %s unit (%s; %s path)\n\n"
                "effective configuration:\n%s\n",
                unit.name, unit.conflictSemantics,
                unit.policy == AlarmKind::Oscillation ? "oscillation"
                                                      : "contention",
                scenarioConfig(options.scenario).dump().c_str());

    const OnlineAuditResult r = runOnlineAudit(options);

    bool detected = false;
    for (const UnitOutcome& outcome : r.finalVerdicts) {
        detected = detected || outcome.detected;
        std::printf("slot %u (%s): %s (confidence %.3f)\n",
                    outcome.slot, monitorTargetName(outcome.unit),
                    outcome.detected ? "COVERT CHANNEL DETECTED"
                                     : "clean",
                    outcome.confidence);
    }
    std::printf("\nonline alarms: %zu over %llu quanta\npipeline: %s\n",
                r.alarms.size(),
                static_cast<unsigned long long>(r.quantaRecorded),
                r.pipeline.summary().c_str());
    return detected ? 0 : 1;
}
